//! Runtime-dispatched microkernels for the panel GEMM/GEMV hot path.
//!
//! The traversal's dominant cost is `C(m×n) += A(m×k)·B(k×n)` with `A` a
//! K×K translation matrix (K = 12–120) and `B`/`C` gathered panels whose row
//! length `n` is the number of aggregated boxes (hundreds to thousands). The
//! paper leans on CMSSL's tuned multiple-instance GEMM for exactly this
//! shape (§3.3, Table 3); here the equivalent is a family of explicit SIMD
//! microkernels, selected at runtime behind the [`Kernel`] enum with the
//! portable scalar loop kept as the reference implementation.
//!
//! Three SIMD tiers exist:
//!
//! * **AVX2+FMA** (x86-64): a 2×16 register tile — two C rows × four 4-lane
//!   accumulators each (8 independent FMA chains, enough to cover FMA
//!   latency on any recent x86), broadcasting one `A` element per row per
//!   `k` step and streaming unit-stride over `B`. Edges fall back to a 2×4
//!   tile and then scalar columns. The GEMV kernel runs four accumulators
//!   over one row (4×-unrolled by 4 lanes) and reduces horizontally once
//!   per row.
//! * **AVX-512** ([`crate::avx512`], x86-64): the same tiling doubled to
//!   8-lane ZMM registers — a 2×32 main tile, 8 FMA chains.
//! * **NEON** ([`crate::neon`], aarch64): 2-lane f64 vectors, a 2×8 main
//!   tile with 8 independent `vfmaq_f64` chains.
//!
//! Detection runs once (cached in a `OnceLock`) and can be overridden for
//! reproducible benchmarking via `FMM_KERNEL=scalar|avx2|avx512|neon`; an
//! override naming a family the host cannot run falls back to the best
//! supported kernel instead of faulting.

/// Which microkernel family to run. `detect()` is cheap (cached) and the
/// enum is `Copy`, so callers can hoist it out of loops or pass it down.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// Portable blocked scalar loops (the auto-vectorized reference).
    Scalar,
    /// Explicit AVX2 + FMA microkernels (x86-64 only, runtime-detected).
    Avx2Fma,
    /// Explicit AVX-512 microkernels, f64×8 lanes (x86-64 only,
    /// runtime-detected via `avx512f`).
    Avx512,
    /// Explicit NEON microkernels, f64×2 lanes (aarch64, where NEON is
    /// architecturally guaranteed).
    Neon,
}

impl Kernel {
    /// The kernel to use: `FMM_KERNEL` if set to a supported family, else
    /// the best the running CPU supports. Resolution runs once and is
    /// cached for the life of the process.
    pub fn detect() -> Kernel {
        use std::sync::OnceLock;
        static BEST: OnceLock<Kernel> = OnceLock::new();
        *BEST.get_or_init(|| {
            if let Ok(name) = std::env::var("FMM_KERNEL") {
                match Kernel::from_name(&name) {
                    Some(k) if k.supported() => return k,
                    Some(k) => eprintln!(
                        "FMM_KERNEL={} ({}) is not supported on this host; using {}",
                        name,
                        k.name(),
                        Kernel::best_supported().name()
                    ),
                    None => eprintln!(
                        "FMM_KERNEL={} not recognized (scalar|avx2|avx512|neon); using {}",
                        name,
                        Kernel::best_supported().name()
                    ),
                }
            }
            Kernel::best_supported()
        })
    }

    /// The widest kernel the running CPU supports, ignoring `FMM_KERNEL`.
    pub fn best_supported() -> Kernel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Kernel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Kernel::Avx2Fma;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            return Kernel::Neon;
        }
        #[allow(unreachable_code)]
        Kernel::Scalar
    }

    /// Can this family run on the current host?
    pub fn supported(self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2Fma => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => true,
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Avx2Fma => false,
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Avx512 => false,
            #[cfg(not(target_arch = "aarch64"))]
            Kernel::Neon => false,
        }
    }

    /// Every family the running CPU supports, narrowest first. Benchmarks
    /// and parity tests iterate this to cover the whole dispatch matrix.
    pub fn available() -> Vec<Kernel> {
        [
            Kernel::Scalar,
            Kernel::Avx2Fma,
            Kernel::Avx512,
            Kernel::Neon,
        ]
        .into_iter()
        .filter(|k| k.supported())
        .collect()
    }

    /// Parse an `FMM_KERNEL`-style name. Accepts the short spellings used
    /// by the env override and the display names.
    pub fn from_name(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "avx2" | "avx2+fma" => Some(Kernel::Avx2Fma),
            "avx512" | "avx-512" | "avx512f" => Some(Kernel::Avx512),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2Fma => "avx2+fma",
            Kernel::Avx512 => "avx512",
            Kernel::Neon => "neon",
        }
    }
}

/// `C += A * B` with an explicit kernel choice. `gemm_acc` calls this with
/// `Kernel::detect()`; benchmarks call it with every variant to compare.
pub fn gemm_acc_with(
    kernel: Kernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    match kernel {
        Kernel::Scalar => gemm_acc_scalar(m, k, n, a, b, c),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2Fma is only handed out by detect() after the feature
        // check (or chosen explicitly by tests/benches on the same CPU).
        Kernel::Avx2Fma => unsafe { avx2::gemm_acc(m, k, n, a, b, c) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, gated on avx512f.
        Kernel::Avx512 => unsafe { crate::avx512::gemm_acc(m, k, n, a, b, c) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        Kernel::Neon => unsafe { crate::neon::gemm_acc(m, k, n, a, b, c) },
        #[allow(unreachable_patterns)]
        _ => gemm_acc_scalar(m, k, n, a, b, c),
    }
}

/// Shared accumulating GEMV core: `y = A*x` (`accumulate = false`) or
/// `y += A*x` (`accumulate = true`). Both public wrappers route here.
pub fn gemv_with(
    kernel: Kernel,
    m: usize,
    k: usize,
    a: &[f64],
    x: &[f64],
    y: &mut [f64],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(y.len(), m);
    match kernel {
        Kernel::Scalar => gemv_scalar(m, k, a, x, y, accumulate),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see gemm_acc_with.
        Kernel::Avx2Fma => unsafe { avx2::gemv(m, k, a, x, y, accumulate) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see gemm_acc_with.
        Kernel::Avx512 => unsafe { crate::avx512::gemv(m, k, a, x, y, accumulate) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        Kernel::Neon => unsafe { crate::neon::gemv(m, k, a, x, y, accumulate) },
        #[allow(unreachable_patterns)]
        _ => gemv_scalar(m, k, a, x, y, accumulate),
    }
}

/// Portable blocked i-k-j GEMM (the original reference kernel).
pub fn gemm_acc_scalar(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    // Block over k so that the `KB` rows of B being streamed stay in L1/L2.
    const KB: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let kb = KB.min(k - k0);
        for i in 0..m {
            let arow = &a[i * k + k0..i * k + k0 + kb];
            let crow = &mut c[i * n..(i + 1) * n];
            // Unroll pairs of rank-1 updates to expose more ILP.
            let mut p = 0;
            while p + 1 < kb {
                let a0 = arow[p];
                let a1 = arow[p + 1];
                let b0 = &b[(k0 + p) * n..(k0 + p) * n + n];
                let b1 = &b[(k0 + p + 1) * n..(k0 + p + 1) * n + n];
                for ((cj, b0j), b1j) in crow.iter_mut().zip(b0).zip(b1) {
                    *cj += a0 * b0j + a1 * b1j;
                }
                p += 2;
            }
            if p < kb {
                let a0 = arow[p];
                let b0 = &b[(k0 + p) * n..(k0 + p) * n + n];
                for (cj, b0j) in crow.iter_mut().zip(b0) {
                    *cj += a0 * b0j;
                }
            }
        }
        k0 += kb;
    }
}

pub(crate) fn gemv_scalar(
    _m: usize,
    k: usize,
    a: &[f64],
    x: &[f64],
    y: &mut [f64],
    accumulate: bool,
) {
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &a[i * k..(i + 1) * k];
        let mut acc = 0.0;
        for (aij, xj) in row.iter().zip(x) {
            acc += aij * xj;
        }
        if accumulate {
            *yi += acc;
        } else {
            *yi = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// 2-row × 16-column register-tiled `C += A·B`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA, and that the slice
    /// lengths match (checked by the public wrapper).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        // Main 2-row tile.
        while i + 2 <= m {
            row_pair(i, k, n, ap, bp, cp);
            i += 2;
        }
        // Odd final row: a 1×16 tile with four accumulators.
        if i < m {
            row_single(i, k, n, ap, bp, cp);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_pair(i: usize, k: usize, n: usize, ap: *const f64, bp: *const f64, cp: *mut f64) {
        let a0row = ap.add(i * k);
        let a1row = ap.add((i + 1) * k);
        let c0row = cp.add(i * n);
        let c1row = cp.add((i + 1) * n);
        let mut j = 0;
        while j + 16 <= n {
            let mut q00 = _mm256_loadu_pd(c0row.add(j));
            let mut q01 = _mm256_loadu_pd(c0row.add(j + 4));
            let mut q02 = _mm256_loadu_pd(c0row.add(j + 8));
            let mut q03 = _mm256_loadu_pd(c0row.add(j + 12));
            let mut q10 = _mm256_loadu_pd(c1row.add(j));
            let mut q11 = _mm256_loadu_pd(c1row.add(j + 4));
            let mut q12 = _mm256_loadu_pd(c1row.add(j + 8));
            let mut q13 = _mm256_loadu_pd(c1row.add(j + 12));
            for p in 0..k {
                let brow = bp.add(p * n + j);
                let b0 = _mm256_loadu_pd(brow);
                let b1 = _mm256_loadu_pd(brow.add(4));
                let b2 = _mm256_loadu_pd(brow.add(8));
                let b3 = _mm256_loadu_pd(brow.add(12));
                let a0 = _mm256_set1_pd(*a0row.add(p));
                let a1 = _mm256_set1_pd(*a1row.add(p));
                q00 = _mm256_fmadd_pd(a0, b0, q00);
                q01 = _mm256_fmadd_pd(a0, b1, q01);
                q02 = _mm256_fmadd_pd(a0, b2, q02);
                q03 = _mm256_fmadd_pd(a0, b3, q03);
                q10 = _mm256_fmadd_pd(a1, b0, q10);
                q11 = _mm256_fmadd_pd(a1, b1, q11);
                q12 = _mm256_fmadd_pd(a1, b2, q12);
                q13 = _mm256_fmadd_pd(a1, b3, q13);
            }
            _mm256_storeu_pd(c0row.add(j), q00);
            _mm256_storeu_pd(c0row.add(j + 4), q01);
            _mm256_storeu_pd(c0row.add(j + 8), q02);
            _mm256_storeu_pd(c0row.add(j + 12), q03);
            _mm256_storeu_pd(c1row.add(j), q10);
            _mm256_storeu_pd(c1row.add(j + 4), q11);
            _mm256_storeu_pd(c1row.add(j + 8), q12);
            _mm256_storeu_pd(c1row.add(j + 12), q13);
            j += 16;
        }
        while j + 4 <= n {
            let mut q0 = _mm256_loadu_pd(c0row.add(j));
            let mut q1 = _mm256_loadu_pd(c1row.add(j));
            for p in 0..k {
                let bv = _mm256_loadu_pd(bp.add(p * n + j));
                q0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0row.add(p)), bv, q0);
                q1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1row.add(p)), bv, q1);
            }
            _mm256_storeu_pd(c0row.add(j), q0);
            _mm256_storeu_pd(c1row.add(j), q1);
            j += 4;
        }
        while j < n {
            let mut s0 = 0.0;
            let mut s1 = 0.0;
            for p in 0..k {
                let bv = *bp.add(p * n + j);
                s0 += *a0row.add(p) * bv;
                s1 += *a1row.add(p) * bv;
            }
            *c0row.add(j) += s0;
            *c1row.add(j) += s1;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_single(
        i: usize,
        k: usize,
        n: usize,
        ap: *const f64,
        bp: *const f64,
        cp: *mut f64,
    ) {
        let arow = ap.add(i * k);
        let crow = cp.add(i * n);
        let mut j = 0;
        while j + 16 <= n {
            let mut q0 = _mm256_loadu_pd(crow.add(j));
            let mut q1 = _mm256_loadu_pd(crow.add(j + 4));
            let mut q2 = _mm256_loadu_pd(crow.add(j + 8));
            let mut q3 = _mm256_loadu_pd(crow.add(j + 12));
            for p in 0..k {
                let brow = bp.add(p * n + j);
                let av = _mm256_set1_pd(*arow.add(p));
                q0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow), q0);
                q1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow.add(4)), q1);
                q2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow.add(8)), q2);
                q3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow.add(12)), q3);
            }
            _mm256_storeu_pd(crow.add(j), q0);
            _mm256_storeu_pd(crow.add(j + 4), q1);
            _mm256_storeu_pd(crow.add(j + 8), q2);
            _mm256_storeu_pd(crow.add(j + 12), q3);
            j += 16;
        }
        while j + 4 <= n {
            let mut q = _mm256_loadu_pd(crow.add(j));
            for p in 0..k {
                q = _mm256_fmadd_pd(
                    _mm256_set1_pd(*arow.add(p)),
                    _mm256_loadu_pd(bp.add(p * n + j)),
                    q,
                );
            }
            _mm256_storeu_pd(crow.add(j), q);
            j += 4;
        }
        while j < n {
            let mut s = 0.0;
            for p in 0..k {
                s += *arow.add(p) * *bp.add(p * n + j);
            }
            *crow.add(j) += s;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        let swapped = _mm_unpackhi_pd(s, s);
        _mm_cvtsd_f64(_mm_add_sd(s, swapped))
    }

    /// Row-wise dot products, 4 accumulators × 4 lanes per row.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA support and matching slice lengths.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemv(_m: usize, k: usize, a: &[f64], x: &[f64], y: &mut [f64], accumulate: bool) {
        let ap = a.as_ptr();
        let xp = x.as_ptr();
        for (i, yi) in y.iter_mut().enumerate() {
            let row = ap.add(i * k);
            let mut q0 = _mm256_setzero_pd();
            let mut q1 = _mm256_setzero_pd();
            let mut q2 = _mm256_setzero_pd();
            let mut q3 = _mm256_setzero_pd();
            let mut p = 0;
            while p + 16 <= k {
                q0 = _mm256_fmadd_pd(_mm256_loadu_pd(row.add(p)), _mm256_loadu_pd(xp.add(p)), q0);
                q1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(row.add(p + 4)),
                    _mm256_loadu_pd(xp.add(p + 4)),
                    q1,
                );
                q2 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(row.add(p + 8)),
                    _mm256_loadu_pd(xp.add(p + 8)),
                    q2,
                );
                q3 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(row.add(p + 12)),
                    _mm256_loadu_pd(xp.add(p + 12)),
                    q3,
                );
                p += 16;
            }
            while p + 4 <= k {
                q0 = _mm256_fmadd_pd(_mm256_loadu_pd(row.add(p)), _mm256_loadu_pd(xp.add(p)), q0);
                p += 4;
            }
            let mut acc = hsum(_mm256_add_pd(_mm256_add_pd(q0, q1), _mm256_add_pd(q2, q3)));
            while p < k {
                acc += *row.add(p) * *xp.add(p);
                p += 1;
            }
            if accumulate {
                *yi += acc;
            } else {
                *yi = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;

    fn pseudo(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn detect_is_stable() {
        assert_eq!(Kernel::detect(), Kernel::detect());
    }

    #[test]
    fn available_contains_scalar_and_detected() {
        let avail = Kernel::available();
        assert!(avail.contains(&Kernel::Scalar));
        assert!(avail.contains(&Kernel::detect()));
        for k in avail {
            assert!(k.supported());
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in [
            Kernel::Scalar,
            Kernel::Avx2Fma,
            Kernel::Avx512,
            Kernel::Neon,
        ] {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("avx2"), Some(Kernel::Avx2Fma));
        assert_eq!(Kernel::from_name("AVX512"), Some(Kernel::Avx512));
        assert_eq!(Kernel::from_name("riscv-v"), None);
    }

    #[test]
    fn gemm_kernels_agree_on_awkward_shapes() {
        // Shapes chosen to hit every edge path of every family: 32- and
        // 16-wide main tiles, 8- and 4-wide tiles, scalar columns, and the
        // odd trailing row.
        for kernel in Kernel::available() {
            for &(m, k, n) in &[
                (1, 1, 1),
                (2, 3, 4),
                (3, 5, 7),
                (5, 12, 16),
                (12, 12, 33),
                (7, 72, 21),
                (72, 72, 129),
                (13, 129, 63),
                (2, 12, 40),
            ] {
                let a = pseudo(1 + m as u64, m * k);
                let b = pseudo(2 + n as u64, k * n);
                let mut c1 = pseudo(3, m * n);
                let mut c2 = c1.clone();
                gemm_acc_with(kernel, m, k, n, &a, &b, &mut c1);
                gemm_naive(m, k, n, &a, &b, &mut c2);
                for (x, y) in c1.iter().zip(&c2) {
                    assert!(
                        (x - y).abs() < 1e-11 * (1.0 + y.abs()),
                        "{:?} mismatch for {}x{}x{}: {} vs {}",
                        kernel,
                        m,
                        k,
                        n,
                        x,
                        y
                    );
                }
            }
        }
    }

    #[test]
    fn gemv_kernels_agree() {
        for kernel in Kernel::available() {
            for &(m, k) in &[(1, 1), (3, 5), (12, 12), (7, 17), (72, 72), (33, 129)] {
                let a = pseudo(5 + m as u64, m * k);
                let x = pseudo(7 + k as u64, k);
                let mut y1 = pseudo(9, m);
                let mut y2 = y1.clone();
                gemv_with(kernel, m, k, &a, &x, &mut y1, true);
                gemv_with(Kernel::Scalar, m, k, &a, &x, &mut y2, true);
                for (p, q) in y1.iter().zip(&y2) {
                    assert!(
                        (p - q).abs() < 1e-11 * (1.0 + q.abs()),
                        "{:?} {}x{}",
                        kernel,
                        m,
                        k
                    );
                }
                gemv_with(kernel, m, k, &a, &x, &mut y1, false);
                gemv_with(Kernel::Scalar, m, k, &a, &x, &mut y2, false);
                assert_eq!(y1.len(), y2.len());
                for (p, q) in y1.iter().zip(&y2) {
                    assert!((p - q).abs() < 1e-11 * (1.0 + q.abs()));
                }
            }
        }
    }
}
