//! Multiple-instance GEMM, mirroring the CMSSL routine the paper uses.
//!
//! The paper aggregates parent–child translations "along one of the three
//! space dimensions without a data reallocation", producing `S_m`
//! independent `K×K by K×S` products handled "as one multiple instance
//! matrix matrix multiplication". Here a [`MultiGemmPlan`] describes a
//! batch of products that share shapes but have distinct operand offsets in
//! flat buffers; [`multi_gemm_acc`] executes the batch.

/// One instance of a batched product: offsets of A, B and C in their
/// respective flat buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instance {
    pub a_off: usize,
    pub b_off: usize,
    pub c_off: usize,
}

/// A batch of same-shape `C += A*B` products over flat buffers.
#[derive(Debug, Clone)]
pub struct MultiGemmPlan {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub instances: Vec<Instance>,
}

impl MultiGemmPlan {
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        MultiGemmPlan {
            m,
            k,
            n,
            instances: Vec::new(),
        }
    }

    /// Add an instance with the given operand offsets.
    pub fn push(&mut self, a_off: usize, b_off: usize, c_off: usize) {
        self.instances.push(Instance {
            a_off,
            b_off,
            c_off,
        });
    }

    /// A plan with regular strides: instance `i` uses offsets
    /// `i*stride_{a,b,c}`.
    pub fn strided(
        m: usize,
        k: usize,
        n: usize,
        count: usize,
        stride_a: usize,
        stride_b: usize,
        stride_c: usize,
    ) -> Self {
        let instances = (0..count)
            .map(|i| Instance {
                a_off: i * stride_a,
                b_off: i * stride_b,
                c_off: i * stride_c,
            })
            .collect();
        MultiGemmPlan { m, k, n, instances }
    }

    /// Total flops executed by the batch.
    pub fn flops(&self) -> u64 {
        crate::gemm_flops(self.m, self.k, self.n) * self.instances.len() as u64
    }
}

/// Execute a batched `C += A * B` over flat buffers.
///
/// Panics if any instance would read or write out of bounds.
pub fn multi_gemm_acc(plan: &MultiGemmPlan, a: &[f64], b: &[f64], c: &mut [f64]) {
    multi_gemm_acc_with(crate::Kernel::detect(), plan, a, b, c)
}

/// [`multi_gemm_acc`] with an explicit microkernel family.
pub fn multi_gemm_acc_with(
    kernel: crate::Kernel,
    plan: &MultiGemmPlan,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    let (m, k, n) = (plan.m, plan.k, plan.n);
    for inst in &plan.instances {
        let ai = &a[inst.a_off..inst.a_off + m * k];
        let bi = &b[inst.b_off..inst.b_off + k * n];
        let ci = &mut c[inst.c_off..inst.c_off + m * n];
        crate::gemm_acc_with(kernel, m, k, n, ai, bi, ci);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;

    #[test]
    fn strided_plan_offsets() {
        let plan = MultiGemmPlan::strided(2, 2, 3, 4, 0, 6, 6);
        assert_eq!(plan.instances.len(), 4);
        assert_eq!(
            plan.instances[2],
            Instance {
                a_off: 0,
                b_off: 12,
                c_off: 12
            }
        );
    }

    #[test]
    fn batch_matches_individual() {
        let (m, k, n) = (4, 4, 5);
        let count = 3;
        let a: Vec<f64> = (0..count * m * k).map(|i| (i % 17) as f64 - 8.0).collect();
        let b: Vec<f64> = (0..count * k * n).map(|i| (i % 13) as f64 * 0.5).collect();
        let mut c = vec![0.0; count * m * n];
        let plan = MultiGemmPlan::strided(m, k, n, count, m * k, k * n, m * n);
        multi_gemm_acc(&plan, &a, &b, &mut c);

        let mut c_ref = vec![0.0; count * m * n];
        for i in 0..count {
            gemm_naive(
                m,
                k,
                n,
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                &mut c_ref[i * m * n..(i + 1) * m * n],
            );
        }
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn shared_a_instances() {
        // All instances can share one A (the paper shares one translation
        // matrix across all same-octant parent-child pairs).
        let (m, k, n) = (3, 3, 2);
        let a: Vec<f64> = vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0];
        let b: Vec<f64> = (0..2 * k * n).map(|i| i as f64).collect();
        let mut c = vec![0.0; 2 * m * n];
        let mut plan = MultiGemmPlan::new(m, k, n);
        plan.push(0, 0, 0);
        plan.push(0, k * n, m * n);
        multi_gemm_acc(&plan, &a, &b, &mut c);
        // Second instance: rows of B scaled by diag(1,2,3).
        assert_eq!(c[m * n], 6.0); // 1 * b[6]
        assert_eq!(c[m * n + 2], 2.0 * 8.0);
        assert_eq!(c[m * n + 4], 3.0 * 10.0);
    }

    #[test]
    fn flops_accounting() {
        let plan = MultiGemmPlan::strided(12, 12, 8, 16, 0, 96, 96);
        assert_eq!(plan.flops(), 16 * 2 * 12 * 12 * 8);
    }
}
