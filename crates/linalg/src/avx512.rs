//! AVX-512 microkernels. The GEMM walks 32-column panels with a 4-row ×
//! 4-ZMM register tile (16 independent FMA chains); the trailing
//! `n mod 32` columns reuse the same tile with fewer registers and an
//! AVX-512 write-mask on the final, partial one. Panels are the *outer*
//! loop: one panel's B stripe (`k × 32` doubles) stays L1-resident while
//! every row block streams past it. A 2-row × 4-register tile with rows
//! outermost — the AVX2 layout doubled — re-reads the whole B stripe per
//! row pair from L2 and measures slower than AVX2 on the translation
//! shapes this repo runs (n = K ∈ {12, 72, 120}); narrow column tiles
//! (2 rows × 1 register) are latency-bound. The 4-row masked tile handles
//! both ends.
//!
//! Everything here is gated on `avx512f` only (loads, stores, FMA, masked
//! 512-bit loads/stores and the reduce intrinsics are all in the F
//! subset), so the kernels run on every AVX-512 part from Skylake-X
//! onward.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// Register-tiled `C += A·B`: 32-column panels under a 4-row × 4-ZMM
/// tile, with a masked tile on the trailing `n mod 32` columns.
///
/// # Safety
/// Caller must ensure the CPU supports AVX-512F, and that the slice
/// lengths match (checked by the public wrapper in [`crate::kernel`]).
#[target_feature(enable = "avx512f")]
pub unsafe fn gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    let mut j = 0;
    while j + 32 <= n {
        col_panel::<4>(m, k, n, j, 32, ap, bp, cp);
        j += 32;
    }
    let rem = n - j;
    if rem > 0 {
        match rem.div_ceil(8) {
            1 => col_panel::<1>(m, k, n, j, rem, ap, bp, cp),
            2 => col_panel::<2>(m, k, n, j, rem, ap, bp, cp),
            3 => col_panel::<3>(m, k, n, j, rem, ap, bp, cp),
            _ => col_panel::<4>(m, k, n, j, rem, ap, bp, cp),
        }
    }
}

/// Lane masks for a column panel of `rem` columns split over `REGS`
/// 8-lane registers: all-ones except the final, partial register.
#[inline]
fn panel_masks<const REGS: usize>(rem: usize) -> [u8; REGS] {
    let mut masks = [0u8; REGS];
    for (q, mk) in masks.iter_mut().enumerate() {
        let lanes = (rem - 8 * q).min(8);
        *mk = if lanes == 8 { 0xff } else { (1u8 << lanes) - 1 };
    }
    masks
}

/// One panel of `rem ≤ 32` columns starting at `j0`, for all `m` rows:
/// 4 rows at a time, `REGS` masked ZMM accumulators per row (up to 16
/// FMA chains).
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn col_panel<const REGS: usize>(
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
    rem: usize,
    ap: *const f64,
    bp: *const f64,
    cp: *mut f64,
) {
    let masks = panel_masks::<REGS>(rem);
    let mut i = 0;
    while i + 4 <= m {
        panel_block::<REGS, 4>(i, k, n, j0, masks, ap, bp, cp);
        i += 4;
    }
    while i < m {
        panel_block::<REGS, 1>(i, k, n, j0, masks, ap, bp, cp);
        i += 1;
    }
}

#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn panel_block<const REGS: usize, const ROWS: usize>(
    i: usize,
    k: usize,
    n: usize,
    j0: usize,
    masks: [u8; REGS],
    ap: *const f64,
    bp: *const f64,
    cp: *mut f64,
) {
    let mut acc = [[_mm512_setzero_pd(); REGS]; ROWS];
    for (r, row) in acc.iter_mut().enumerate() {
        for (q, v) in row.iter_mut().enumerate() {
            *v = _mm512_maskz_loadu_pd(masks[q], cp.add((i + r) * n + j0 + 8 * q));
        }
    }
    for p in 0..k {
        let mut bv = [_mm512_setzero_pd(); REGS];
        for (q, v) in bv.iter_mut().enumerate() {
            *v = _mm512_maskz_loadu_pd(masks[q], bp.add(p * n + j0 + 8 * q));
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_pd(*ap.add((i + r) * k + p));
            for (q, v) in row.iter_mut().enumerate() {
                *v = _mm512_fmadd_pd(av, bv[q], *v);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        for (q, v) in row.iter().enumerate() {
            _mm512_mask_storeu_pd(cp.add((i + r) * n + j0 + 8 * q), masks[q], *v);
        }
    }
}

/// Row-wise dot products, 4 accumulators × 8 lanes per row.
///
/// # Safety
/// Caller must ensure AVX-512F support and matching slice lengths.
#[target_feature(enable = "avx512f")]
pub unsafe fn gemv(_m: usize, k: usize, a: &[f64], x: &[f64], y: &mut [f64], accumulate: bool) {
    let ap = a.as_ptr();
    let xp = x.as_ptr();
    for (i, yi) in y.iter_mut().enumerate() {
        let row = ap.add(i * k);
        let mut q0 = _mm512_setzero_pd();
        let mut q1 = _mm512_setzero_pd();
        let mut q2 = _mm512_setzero_pd();
        let mut q3 = _mm512_setzero_pd();
        let mut p = 0;
        while p + 32 <= k {
            q0 = _mm512_fmadd_pd(_mm512_loadu_pd(row.add(p)), _mm512_loadu_pd(xp.add(p)), q0);
            q1 = _mm512_fmadd_pd(
                _mm512_loadu_pd(row.add(p + 8)),
                _mm512_loadu_pd(xp.add(p + 8)),
                q1,
            );
            q2 = _mm512_fmadd_pd(
                _mm512_loadu_pd(row.add(p + 16)),
                _mm512_loadu_pd(xp.add(p + 16)),
                q2,
            );
            q3 = _mm512_fmadd_pd(
                _mm512_loadu_pd(row.add(p + 24)),
                _mm512_loadu_pd(xp.add(p + 24)),
                q3,
            );
            p += 32;
        }
        while p + 8 <= k {
            q0 = _mm512_fmadd_pd(_mm512_loadu_pd(row.add(p)), _mm512_loadu_pd(xp.add(p)), q0);
            p += 8;
        }
        let mut acc =
            _mm512_reduce_add_pd(_mm512_add_pd(_mm512_add_pd(q0, q1), _mm512_add_pd(q2, q3)));
        while p < k {
            acc += *row.add(p) * *xp.add(p);
            p += 1;
        }
        if accumulate {
            *yi += acc;
        } else {
            *yi = acc;
        }
    }
}
