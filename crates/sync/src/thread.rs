//! Thread facade. Under the model, `spawn` registers a child model
//! thread with the scheduler (it runs only when granted the token) and
//! `join` is a visible operation enabled once the child finished. The
//! child's return value travels through a shared slot rather than the
//! OS join, so the explorer can reap every OS thread at end of run
//! regardless of whether the model joined it.

use crate::model::{self, Op, Uid};
use std::io;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

enum HandleRepr<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        uid: Uid,
        slot: Arc<StdMutex<Option<T>>>,
        cx: Arc<model::Ctx>,
    },
}

pub struct JoinHandle<T>(HandleRepr<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish (a scheduling point under the
    /// model). A child that panicked inside the model has already been
    /// reported as a violation; its join yields an opaque error.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleRepr::Std(h) => h.join(),
            HandleRepr::Model { uid, slot, cx } => {
                cx.yield_op(model::current_tid(), Op::Join(uid));
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .ok_or_else(|| -> Box<dyn std::any::Any + Send> {
                        Box::new("model thread panicked".to_string())
                    })
            }
        }
    }
}

/// Mirror of `std::thread::Builder` (name only).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder::default()
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match model::current() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(HandleRepr::Std(h)))
            }
            Some(cx) => {
                let name = self
                    .name
                    .unwrap_or_else(|| format!("t{}", model::fresh_uid()));
                let slot = Arc::new(StdMutex::new(None));
                let slot2 = Arc::clone(&slot);
                let (_tid, uid) = model::spawn_model_thread(&cx, name, move || {
                    let v = f();
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                });
                Ok(JoinHandle(HandleRepr::Model { uid, slot, cx }))
            }
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_spawn_and_join() {
        let h = Builder::new()
            .name("worker".to_string())
            .spawn(|| 6 * 7)
            .unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
