//! Time facade: real `std::time::Instant` normally, a deterministic
//! virtual clock (1 tick = 1 ns) under the model. `Instant::now()`
//! advances the virtual clock by one tick so successive timestamps are
//! strictly ordered; `model::advance` moves it in bulk.

use crate::model;
use std::time::Duration;

/// Drop-in subset of `std::time::Instant`. Real and virtual instants
/// are never mixed: a process is either inside `model::explore` (all
/// virtual) or not (all real).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Instant {
    Real(std::time::Instant),
    /// Nanosecond ticks on the model's virtual clock.
    Virtual(u64),
}

impl Instant {
    pub fn now() -> Instant {
        match model::current() {
            Some(cx) => Instant::Virtual(cx.clock_tick()),
            None => Instant::Real(std::time::Instant::now()),
        }
    }

    /// Saturating `self - earlier` (zero if `earlier` is later).
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (self, earlier) {
            (Instant::Real(a), Instant::Real(b)) => a.saturating_duration_since(b),
            (Instant::Virtual(a), Instant::Virtual(b)) => Duration::from_nanos(a.saturating_sub(b)),
            _ => Duration::ZERO,
        }
    }

    /// `self - earlier`; like the saturating form (panicking on
    /// non-monotonicity buys nothing here).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.saturating_duration_since(earlier)
    }

    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        match self {
            Instant::Real(a) => a.checked_add(d).map(Instant::Real),
            Instant::Virtual(t) => {
                let nanos = u64::try_from(d.as_nanos()).ok()?;
                t.checked_add(nanos).map(Instant::Virtual)
            }
        }
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        match self {
            Instant::Real(a) => Instant::Real(a + d),
            Instant::Virtual(t) => {
                Instant::Virtual(t.saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64))
            }
        }
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, other: Instant) -> Duration {
        self.saturating_duration_since(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_instants_order_and_add() {
        let a = Instant::now();
        let b = a + Duration::from_millis(1);
        assert!(b > a);
        assert_eq!(b.saturating_duration_since(a), Duration::from_millis(1));
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
    }

    #[test]
    fn virtual_instants_are_ticks() {
        let a = Instant::Virtual(10);
        let b = a + Duration::from_nanos(5);
        assert_eq!(b, Instant::Virtual(15));
        assert_eq!(b - a, Duration::from_nanos(5));
        assert_eq!(
            b.checked_add(Duration::from_nanos(1)),
            Some(Instant::Virtual(16))
        );
    }
}
