//! # fmm-sync — synchronization facade with a built-in model checker
//!
//! Drop-in mirrors of the `std::sync` primitives the fmm control plane
//! uses — [`Mutex`], [`RwLock`], [`Condvar`], [`atomic`], [`mpsc`],
//! [`thread`], and a monotonic [`time::Instant`]. Outside of a model
//! run every type delegates directly to `std`; inside
//! [`model::explore`] the same types become *visible operations* of a
//! deterministic cooperative scheduler that enumerates thread
//! interleavings exhaustively (with sleep-set pruning and optional
//! preemption bounds).
//!
//! The switch is a runtime thread-local, not a cargo feature, so a
//! single build of the workspace serves both production and checking:
//! feature unification can never silently put checked primitives on
//! the serving path.
//!
//! ```
//! use fmm_sync::{model, Mutex};
//! use std::sync::Arc;
//!
//! let stats = model::explore(&model::Options::default(), || {
//!     let m = Arc::new(Mutex::new(0u32));
//!     let m2 = Arc::clone(&m);
//!     let h = fmm_sync::thread::spawn(move || *m2.lock().unwrap() += 1);
//!     *m.lock().unwrap() += 1;
//!     h.join().unwrap();
//!     assert_eq!(*m.lock().unwrap(), 2);
//! })
//! .unwrap();
//! assert!(stats.schedules >= 2);
//! ```

pub mod atomic;
pub mod model;
pub mod mpsc;
pub mod thread;
pub mod time;

use model::{Op, Uid};
use std::sync::{Arc, LockResult, PoisonError, TryLockError};

// ---------------------------------------------------------------- Mutex

/// Mirror of `std::sync::Mutex`.
#[derive(Debug)]
pub struct Mutex<T> {
    uid: Uid,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releasing it is a visible
/// operation under the model.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<Arc<model::Ctx>>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            uid: model::fresh_uid(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match model::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
            Some(cx) => {
                cx.yield_op(model::current_tid(), Op::Lock(self.uid));
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(self.grab_inner()),
                    model: Some(cx),
                })
            }
        }
    }

    /// Take the std guard after the model granted the lock (the model
    /// guarantees it is free; poison is already reported as a panic
    /// violation, so it is swallowed here).
    fn grab_inner(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model granted a lock that is still held")
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the thread the model grants it
        // to next finds it free.
        self.inner.take();
        if let Some(cx) = &self.model {
            if model::active() {
                cx.yield_op(model::current_tid(), Op::Unlock(self.lock.uid));
            }
        }
    }
}

// --------------------------------------------------------------- RwLock

/// Mirror of `std::sync::RwLock`.
#[derive(Debug)]
pub struct RwLock<T> {
    uid: Uid,
    inner: std::sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<Arc<model::Ctx>>,
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<Arc<model::Ctx>>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            uid: model::fresh_uid(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match model::current() {
            None => match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
            Some(cx) => {
                cx.yield_op(model::current_tid(), Op::RwRead(self.uid));
                let g = match self.inner.try_read() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model granted a read lock that is write-held")
                    }
                };
                Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: Some(cx),
                })
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match model::current() {
            None => match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
            Some(cx) => {
                cx.yield_op(model::current_tid(), Op::RwWrite(self.uid));
                let g = match self.inner.try_write() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model granted a write lock that is held")
                    }
                };
                Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: Some(cx),
                })
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some(cx) = &self.model {
            if model::active() {
                cx.yield_op(model::current_tid(), Op::RwReadUnlock(self.lock.uid));
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some(cx) = &self.model {
            if model::active() {
                cx.yield_op(model::current_tid(), Op::RwWriteUnlock(self.lock.uid));
            }
        }
    }
}

// -------------------------------------------------------------- Condvar

/// Result of [`Condvar::wait_timeout`] (std's equivalent cannot be
/// constructed outside std).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Mirror of `std::sync::Condvar`. Under the model a timed wait is a
/// scheduling *choice*: the explorer branches between the timeout
/// firing (advancing the virtual clock to the deadline) and a
/// notification arriving first — so lost-wakeup bugs surface as
/// deadlocks on the untimed path and livelocks on the timed one.
#[derive(Debug)]
pub struct Condvar {
    uid: Uid,
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            uid: model::fresh_uid(),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match &guard.model {
            None => {
                let mutex = guard.lock;
                let mut guard = guard;
                let std_guard = guard.inner.take().expect("guard already released");
                // `guard` now has no inner and no model: its Drop is a
                // no-op, and the std wait consumes the real guard.
                // cv-loop: facade forwarding site — the caller loops.
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        lock: mutex,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock: mutex,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
            Some(cx) => {
                let cx = Arc::clone(cx);
                let mutex = guard.lock;
                let mut guard = guard;
                guard.inner.take();
                let model = guard.model.take(); // Drop is now a no-op
                cx.cv_wait(model::current_tid(), self.uid, mutex.uid, None);
                Ok(MutexGuard {
                    lock: mutex,
                    inner: Some(mutex.grab_inner()),
                    model,
                })
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match &guard.model {
            None => {
                let mutex = guard.lock;
                let mut guard = guard;
                let std_guard = guard.inner.take().expect("guard already released");
                // cv-loop: facade forwarding site — the caller loops.
                match self.inner.wait_timeout(std_guard, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            lock: mutex,
                            inner: Some(g),
                            model: None,
                        },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock: mutex,
                                inner: Some(g),
                                model: None,
                            },
                            WaitTimeoutResult {
                                timed_out: r.timed_out(),
                            },
                        )))
                    }
                }
            }
            Some(cx) => {
                let cx = Arc::clone(cx);
                let mutex = guard.lock;
                let mut guard = guard;
                guard.inner.take();
                let model = guard.model.take();
                let timed_out = cx.cv_wait(model::current_tid(), self.uid, mutex.uid, Some(dur));
                Ok((
                    MutexGuard {
                        lock: mutex,
                        inner: Some(mutex.grab_inner()),
                        model,
                    },
                    WaitTimeoutResult { timed_out },
                ))
            }
        }
    }

    pub fn notify_one(&self) {
        match model::current() {
            None => self.inner.notify_one(),
            Some(cx) => {
                cx.yield_op(
                    model::current_tid(),
                    Op::Notify {
                        cv: self.uid,
                        all: false,
                    },
                );
            }
        }
    }

    pub fn notify_all(&self) {
        match model::current() {
            None => self.inner.notify_all(),
            Some(cx) => {
                cx.yield_op(
                    model::current_tid(),
                    Op::Notify {
                        cv: self.uid,
                        all: true,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{AtomicU64, Ordering};
    use crate::model::{explore, Options, ViolationKind};
    use std::sync::Arc;
    use std::time::Duration;

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn mutex_counter_is_exact_under_all_schedules() {
        let stats = explore(&opts(), || {
            let m = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        })
        .unwrap();
        assert!(stats.complete);
        assert!(
            stats.schedules >= 2,
            "explored {} schedules",
            stats.schedules
        );
    }

    #[test]
    fn non_atomic_read_modify_write_race_is_found() {
        // Two threads do load-then-store with SeqCst accesses: the
        // classic lost update. The explorer must find the schedule
        // where both loads happen before either store.
        let violation = explore(&opts(), || {
            let x = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let v = x.load(Ordering::SeqCst);
                        x.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
        })
        .unwrap_err();
        assert!(
            matches!(violation.kind, ViolationKind::Panic(_)),
            "expected a panic violation, got {:?}",
            violation.kind
        );
        assert!(!violation.trace.is_empty());
    }

    #[test]
    fn ab_ba_lock_order_deadlocks() {
        let violation = explore(&opts(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            });
            {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            }
            let _ = h.join();
        })
        .unwrap_err();
        assert!(
            matches!(violation.kind, ViolationKind::Deadlock(_)),
            "expected deadlock, got {:?}",
            violation.kind
        );
    }

    #[test]
    fn condvar_handshake_completes_in_every_schedule() {
        let stats = explore(&opts(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut g = m.lock().unwrap();
                *g = true;
                drop(g);
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            h.join().unwrap();
        })
        .unwrap();
        assert!(stats.complete && stats.schedules >= 1);
    }

    #[test]
    fn dropped_notify_is_reported_as_lost_wakeup_deadlock() {
        let violation = explore(&opts(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, _cv) = &*pair2;
                let mut g = m.lock().unwrap();
                *g = true;
                // BUG under test: no notify after the state change.
            });
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            h.join().unwrap();
        })
        .unwrap_err();
        assert!(
            matches!(violation.kind, ViolationKind::Deadlock(_)),
            "expected lost-wakeup deadlock, got {:?}",
            violation.kind
        );
    }

    #[test]
    fn timed_wait_branches_between_timeout_and_notify() {
        let stats = explore(&opts(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock().unwrap() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap();
            while !*g {
                let (g2, timed) = cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
                g = g2;
                if timed.timed_out() {
                    // Deadline-bounded wait: give up after one timeout
                    // (re-arming forever would branch without end).
                    break;
                }
            }
            drop(g);
            h.join().unwrap();
        })
        .unwrap();
        // At least one schedule must have taken the timeout branch and
        // one the notify branch; both complete.
        assert!(stats.schedules >= 2, "explored {}", stats.schedules);
    }

    #[test]
    fn mpsc_delivers_exactly_once_across_schedules() {
        let stats = explore(&opts(), || {
            let (tx, rx) = mpsc::sync_channel::<u32>(1);
            let h = thread::spawn(move || {
                tx.send(7).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(rx.try_recv().is_err(), "second recv must not yield a value");
            h.join().unwrap();
        })
        .unwrap();
        assert!(stats.complete);
    }

    #[test]
    fn virtual_clock_orders_instants() {
        explore(&opts(), || {
            let t0 = time::Instant::now();
            model::advance(Duration::from_millis(5));
            let t1 = time::Instant::now();
            assert!(t1 > t0);
            assert!(t1.saturating_duration_since(t0) >= Duration::from_millis(5));
        })
        .unwrap();
    }

    #[test]
    fn preemption_bound_reduces_schedules() {
        let run = |bound: Option<usize>| {
            explore(
                &Options {
                    preemption_bound: bound,
                    ..Options::default()
                },
                || {
                    let m = Arc::new(Mutex::new(0u32));
                    let hs: Vec<_> = (0..2)
                        .map(|_| {
                            let m = Arc::clone(&m);
                            thread::spawn(move || {
                                for _ in 0..2 {
                                    *m.lock().unwrap() += 1;
                                }
                            })
                        })
                        .collect();
                    for h in hs {
                        h.join().unwrap();
                    }
                    assert_eq!(*m.lock().unwrap(), 4);
                },
            )
            .unwrap()
        };
        let unbounded = run(None);
        let bounded = run(Some(0));
        assert!(unbounded.complete && bounded.complete);
        assert!(
            bounded.schedules < unbounded.schedules,
            "bounded {} !< unbounded {}",
            bounded.schedules,
            unbounded.schedules
        );
    }

    #[test]
    fn max_schedules_budget_truncates() {
        let stats = explore(
            &Options {
                max_schedules: 1,
                ..Options::default()
            },
            || {
                let m = Arc::new(Mutex::new(0u32));
                let m2 = Arc::clone(&m);
                let h = thread::spawn(move || *m2.lock().unwrap() += 1);
                *m.lock().unwrap() += 1;
                h.join().unwrap();
            },
        )
        .unwrap();
        assert_eq!(stats.schedules, 1);
        assert!(!stats.complete);
    }

    #[test]
    fn violation_display_numbers_the_schedule() {
        let v = explore(&opts(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            });
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
            drop((_ga, _gb));
            let _ = h.join();
        })
        .unwrap_err();
        let text = v.to_string();
        assert!(text.contains("deadlock"), "{}", text);
        assert!(text.contains("#1"), "{}", text);
    }
}
