//! Atomic facade. Under the model, accesses with an ordering stronger
//! than `Relaxed` are scheduling points (they are how threads
//! communicate); `Relaxed` accesses — the monotonic counters that
//! dominate the registry hot path — commute with everything and run
//! directly, keeping the schedule space small.

use crate::model::{self, Op, Uid};

pub use std::sync::atomic::Ordering;

macro_rules! atomic_facade {
    ($name:ident, $std:ty, $val:ty) => {
        #[derive(Debug)]
        pub struct $name {
            uid: Uid,
            inner: $std,
        }

        impl $name {
            pub fn new(v: $val) -> Self {
                Self {
                    uid: model::fresh_uid(),
                    inner: <$std>::new(v),
                }
            }

            fn hook(&self, ord: Ordering, write: bool) {
                if ord == Ordering::Relaxed {
                    return;
                }
                if let Some(cx) = model::current() {
                    cx.yield_op(
                        model::current_tid(),
                        Op::Atomic {
                            obj: self.uid,
                            write,
                        },
                    );
                }
            }

            pub fn load(&self, ord: Ordering) -> $val {
                self.hook(ord, false);
                self.inner.load(ord)
            }

            pub fn store(&self, v: $val, ord: Ordering) {
                self.hook(ord, true);
                self.inner.store(v, ord)
            }

            pub fn swap(&self, v: $val, ord: Ordering) -> $val {
                self.hook(ord, true);
                self.inner.swap(v, ord)
            }

            pub fn compare_exchange(
                &self,
                cur: $val,
                new: $val,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$val, $val> {
                self.hook(if ok == Ordering::Relaxed { err } else { ok }, true);
                self.inner.compare_exchange(cur, new, ok, err)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

atomic_facade!(AtomicBool, std::sync::atomic::AtomicBool, bool);
atomic_facade!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_facade!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

macro_rules! atomic_arith {
    ($name:ident, $val:ty) => {
        impl $name {
            pub fn fetch_add(&self, v: $val, ord: Ordering) -> $val {
                self.hook(ord, true);
                self.inner.fetch_add(v, ord)
            }

            pub fn fetch_sub(&self, v: $val, ord: Ordering) -> $val {
                self.hook(ord, true);
                self.inner.fetch_sub(v, ord)
            }

            pub fn fetch_max(&self, v: $val, ord: Ordering) -> $val {
                self.hook(ord, true);
                self.inner.fetch_max(v, ord)
            }
        }
    };
}

atomic_arith!(AtomicU64, u64);
atomic_arith!(AtomicUsize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_usage_matches_std() {
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
        let c = AtomicU64::new(5);
        assert_eq!(c.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(c.load(Ordering::Relaxed), 7);
        let u = AtomicUsize::new(1);
        assert_eq!(
            u.compare_exchange(1, 9, Ordering::SeqCst, Ordering::SeqCst),
            Ok(1)
        );
        assert_eq!(u.load(Ordering::SeqCst), 9);
    }
}
