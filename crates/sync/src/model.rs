//! Deterministic model-checking scheduler.
//!
//! [`explore`] runs a closure repeatedly, once per distinct thread
//! interleaving, until the schedule space is exhausted (or a budget is
//! hit). Inside the closure, every `fmm_sync` primitive (Mutex, RwLock,
//! Condvar, atomics, mpsc channels, `thread::spawn`) becomes a *visible
//! operation*: the thread parks at the operation, a scheduler picks
//! exactly one runnable thread at a time, and a depth-first search over
//! those scheduling decisions replays the closure under every
//! non-equivalent order.
//!
//! The design follows stateless (replay-based) model checking in the
//! style of loom / CHESS / VeriSoft:
//!
//! - **Real OS threads, one runnable at a time.** Each model thread is a
//!   real `std::thread` parked on a shared condvar; the scheduler hands
//!   a single "token" to the chosen thread, so user code between two
//!   visible operations runs exclusively and needs no instrumentation.
//! - **DFS over decisions with replay.** A run is identified by the
//!   sequence of (thread, variant) choices taken at each decision point.
//!   The explorer keeps a stack of decision nodes; after each run it
//!   advances the deepest node with an unexplored alternative and
//!   replays the prefix.
//! - **Sleep-set pruning** (Godefroid). After exploring choice `c` at a
//!   node, `c`'s thread joins the node's sleep set and is not re-chosen
//!   by *descendants of later siblings* until a dependent operation
//!   (overlapping read/write footprint) wakes it. This visits at least
//!   one interleaving per Mazurkiewicz trace, so it is sound for the
//!   properties checked here: deadlocks, assertion failures, and
//!   final-state invariants.
//! - **Bounded preemptions** (optional, CHESS-style) and a step cap to
//!   keep livelocks finite.
//! - **Virtual clock.** 1 tick = 1 ns. `Instant::now()` advances the
//!   clock by one tick; `Condvar::wait_timeout` deadlines become clock
//!   values, and a timed wait is a *choice*: the scheduler may deliver
//!   the timeout (advancing the clock to the deadline) or let a
//!   notification win. Virtual time is advisory — it orders timeouts
//!   deterministically but is not itself a synchronization mechanism.
//!
//! A violation (panic in user code, deadlock, or livelock) aborts the
//! run and is reported with the full numbered schedule that produced it
//! plus the count of schedules explored up to that point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

/// Process-unique id for model objects (locks, condvars, channels,
/// atomics, threads). Ids are never reused, so state maps populated
/// lazily per run cannot alias objects from a previous run.
pub(crate) type Uid = u64;

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Uids allocated inside a model run start here; replay is
/// deterministic, so the per-run counter hands out identical uids on
/// every replay — which the DFS bookkeeping (sleep-set footprints
/// recorded in earlier runs) depends on. The offset keeps them
/// disjoint from globally allocated uids of objects created outside
/// the run but used inside it.
const RUN_UID_BASE: Uid = 1 << 48;

pub(crate) fn fresh_uid() -> Uid {
    match current() {
        Some(cx) => cx.run_fresh_uid(),
        None => NEXT_UID.fetch_add(1, Ordering::Relaxed),
    }
}

thread_local! {
    static MODEL: std::cell::RefCell<Option<Arc<Ctx>>> = const { std::cell::RefCell::new(None) };
}

/// The model context of the calling thread, if it runs inside [`explore`].
pub(crate) fn current() -> Option<Arc<Ctx>> {
    MODEL.with(|m| m.borrow().clone())
}

fn set_current(cx: Option<Arc<Ctx>>) {
    MODEL.with(|m| *m.borrow_mut() = cx);
}

/// True when the calling thread is a model thread (used by facade types
/// to pick the checked representation at construction time).
pub fn active() -> bool {
    current().is_some()
}

/// Payload of the panic used to unwind model threads when a run is
/// aborted (violation found, or prefix pruned by the sleep set). The
/// thread wrapper catches it; it is never a user-visible panic.
struct ModelAbort;

/// Aborting a run unwinds every parked thread with [`ModelAbort`];
/// without this filter the default panic hook would print one spurious
/// "thread panicked" banner per aborted thread per pruned schedule.
fn install_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Model-thread panics are captured into the violation report
            // (message plus the violating schedule), so the default
            // banner-and-backtrace would only duplicate them on stderr.
            if info.payload().downcast_ref::<ModelAbort>().is_none() && !active() {
                prev(info);
            }
        }));
    });
}

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum context switches away from a runnable thread per
    /// schedule (`None` = unbounded: full exhaustive exploration).
    pub preemption_bound: Option<usize>,
    /// Stop after this many complete schedules (0 = unlimited).
    pub max_schedules: u64,
    /// Abort a single run after this many decisions (livelock guard).
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: None,
            max_schedules: 0,
            max_steps: 20_000,
        }
    }
}

/// Summary of a completed exploration.
#[derive(Debug, Clone)]
pub struct Explored {
    /// Complete schedules executed to the end.
    pub schedules: u64,
    /// Prefixes cut short by sleep-set pruning (their states were
    /// already covered by an explored equivalent order).
    pub pruned: u64,
    /// Total scheduling decisions across all runs.
    pub transitions: u64,
    /// False iff `max_schedules` stopped the search early.
    pub complete: bool,
}

/// Why a schedule was rejected.
#[derive(Debug, Clone)]
pub enum ViolationKind {
    /// A model thread panicked (assertion failure in the checked code).
    Panic(String),
    /// No thread can make progress; the blocked threads are listed.
    Deadlock(Vec<String>),
    /// The step cap was hit (unbounded spinning under the model).
    Livelock,
}

/// A failing schedule: the kind of failure plus the exact decision
/// sequence that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Numbered decisions, oldest first: `#k thread-name: operation`.
    pub trace: Vec<String>,
    /// Schedules fully explored before this one failed.
    pub schedules: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ViolationKind::Panic(msg) => writeln!(f, "panic: {}", msg)?,
            ViolationKind::Deadlock(blocked) => {
                writeln!(f, "deadlock: blocked threads: {}", blocked.join(", "))?
            }
            ViolationKind::Livelock => writeln!(f, "livelock: step cap exceeded")?,
        }
        writeln!(
            f,
            "schedule ({} decisions, after {} clean schedules):",
            self.trace.len(),
            self.schedules
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  #{:<3} {}", i + 1, step)?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// One visible operation a thread is parked at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Op {
    /// First scheduling of a thread.
    Start,
    Lock(Uid),
    Unlock(Uid),
    RwRead(Uid),
    RwReadUnlock(Uid),
    RwWrite(Uid),
    RwWriteUnlock(Uid),
    /// Release `lock` and start waiting on `cv` (deadline in ticks).
    CvWait {
        cv: Uid,
        lock: Uid,
        deadline: Option<u64>,
    },
    Notify {
        cv: Uid,
        all: bool,
    },
    ChanSend(Uid),
    ChanRecv(Uid),
    ChanTryRecv(Uid),
    ChanDropSender(Uid),
    ChanDropReceiver(Uid),
    /// Non-Relaxed atomic access (`write` distinguishes pure loads).
    Atomic {
        obj: Uid,
        write: bool,
    },
    /// Join on the thread with the given object uid.
    Join(Uid),
}

/// What executing an operation tells the facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    Unit,
    /// Channel op: a value is available (pop it).
    RecvReady,
    /// Channel op: counterpart gone (send fails / recv disconnected).
    Disconnected,
    /// try_recv: queue empty, senders alive.
    Empty,
}

#[derive(Debug, Clone)]
enum ObjState {
    Mutex {
        held: bool,
    },
    Rw {
        writer: bool,
        readers: usize,
    },
    Chan {
        len: usize,
        cap: usize,
        senders: usize,
        receiver: bool,
    },
}

#[derive(Debug, Clone)]
enum Status {
    /// Holds the token (executing user code) — or has not yet reached
    /// its first yield after being granted one.
    Running,
    /// Parked at a visible operation.
    Ready(Op),
    /// In a condvar wait. `wake` is `Some(timed_out)` once a notify or
    /// timeout converted the wait into a pending lock reacquisition.
    Waiting {
        cv: Uid,
        lock: Uid,
        deadline: Option<u64>,
        wake: Option<bool>,
    },
    Finished,
}

struct ThreadRec {
    name: String,
    /// Object uid representing the thread itself (join target).
    uid: Uid,
    status: Status,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChoiceKind {
    /// Execute the thread's pending operation.
    Step,
    /// Deliver the timeout of a timed condvar wait.
    Timeout,
}

#[derive(Debug, Clone)]
struct Choice {
    tid: usize,
    kind: ChoiceKind,
    /// (object uid, is_write) pairs this operation touches; two choices
    /// are independent iff no uid is written by either side of an
    /// overlap.
    footprint: Vec<(Uid, bool)>,
    desc: String,
}

/// One decision point in the DFS tree. Persisted across runs.
struct Node {
    choices: Vec<Choice>,
    idx: usize,
    /// Sleep set on entry: threads (with the footprint of their pending
    /// op at the time) that need not be chosen here.
    sleep_entry: Vec<(usize, Vec<(Uid, bool)>)>,
    /// Whether the previously scheduled thread had an enabled choice
    /// here (needed to recount preemptions during replay).
    prev_enabled: bool,
    prev_tid: Option<usize>,
}

struct Sched {
    threads: Vec<ThreadRec>,
    // det: keyed lookups only; never iterated, so map order cannot
    // influence scheduling decisions.
    objects: HashMap<Uid, ObjState>,
    chosen: Option<(usize, ChoiceKind)>,
    uid_counter: Uid,
    clock: u64,
    aborted: bool,
    run_done: bool,
    violation: Option<Violation>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    // --- DFS state (persists across runs) ---
    nodes: Vec<Node>,
    depth: usize,
    cur_sleep: Vec<(usize, Vec<(Uid, bool)>)>,
    prev_tid: Option<usize>,
    preemptions: usize,
    trace: Vec<String>,
    steps: usize,
    schedules: u64,
    pruned: u64,
    transitions: u64,
    opts: Options,
}

pub(crate) struct Ctx {
    mu: StdMutex<Sched>,
    /// Model threads park here between grants.
    cv: StdCondvar,
    /// The controller parks here waiting for `run_done`.
    ctrl: StdCondvar,
}

type SchedGuard<'a> = std::sync::MutexGuard<'a, Sched>;

fn footprint_conflicts(a: &[(Uid, bool)], b: &[(Uid, bool)]) -> bool {
    a.iter()
        .any(|(ua, wa)| b.iter().any(|(ub, wb)| ua == ub && (*wa || *wb)))
}

impl Ctx {
    fn new(opts: Options) -> Ctx {
        Ctx {
            mu: StdMutex::new(Sched {
                threads: Vec::new(),
                // det: see field comment — lookups only.
                objects: HashMap::new(),
                chosen: None,
                uid_counter: RUN_UID_BASE,
                clock: 0,
                aborted: false,
                run_done: false,
                violation: None,
                os_handles: Vec::new(),
                nodes: Vec::new(),
                depth: 0,
                cur_sleep: Vec::new(),
                prev_tid: None,
                preemptions: 0,
                trace: Vec::new(),
                steps: 0,
                schedules: 0,
                pruned: 0,
                transitions: 0,
                opts,
            }),
            cv: StdCondvar::new(),
            ctrl: StdCondvar::new(),
        }
    }

    /// Lock the scheduler state; a panicking model thread may have
    /// poisoned the mutex, which is harmless here (the violation is
    /// recorded separately).
    fn sched(&self) -> SchedGuard<'_> {
        self.mu.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // ---- object helpers (caller holds the sched lock) ----

    fn mutex_state(st: &mut Sched, uid: Uid) -> &mut bool {
        let e = st
            .objects
            .entry(uid)
            .or_insert(ObjState::Mutex { held: false });
        match e {
            ObjState::Mutex { held } => held,
            other => panic!("uid {} used as mutex but is {:?}", uid, other),
        }
    }

    fn rw_state(st: &mut Sched, uid: Uid) -> (&mut bool, &mut usize) {
        let e = st.objects.entry(uid).or_insert(ObjState::Rw {
            writer: false,
            readers: 0,
        });
        match e {
            ObjState::Rw { writer, readers } => (writer, readers),
            other => panic!("uid {} used as rwlock but is {:?}", uid, other),
        }
    }

    fn chan_state(st: &mut Sched, uid: Uid) -> &mut ObjState {
        let e = st.objects.entry(uid).or_insert(ObjState::Chan {
            len: 0,
            cap: usize::MAX,
            senders: 1,
            receiver: true,
        });
        match e {
            c @ ObjState::Chan { .. } => c,
            other => panic!("uid {} used as channel but is {:?}", uid, other),
        }
    }

    pub(crate) fn register_chan(&self, uid: Uid, cap: usize) {
        let mut st = self.sched();
        st.objects.insert(
            uid,
            ObjState::Chan {
                len: 0,
                cap,
                senders: 1,
                receiver: true,
            },
        );
    }

    pub(crate) fn chan_sender_cloned(&self, uid: Uid) {
        let mut st = self.sched();
        if let ObjState::Chan { senders, .. } = Self::chan_state(&mut st, uid) {
            *senders += 1;
        }
    }

    pub(crate) fn clock_tick(&self) -> u64 {
        let mut st = self.sched();
        st.clock += 1;
        st.clock
    }

    pub(crate) fn run_fresh_uid(&self) -> Uid {
        let mut st = self.sched();
        st.uid_counter += 1;
        st.uid_counter
    }

    pub(crate) fn clock_advance(&self, d: Duration) {
        let mut st = self.sched();
        st.clock = st
            .clock
            .saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    // ---- enabledness / footprints ----

    fn op_enabled(st: &mut Sched, op: &Op) -> bool {
        match op {
            Op::Start
            | Op::Unlock(_)
            | Op::RwReadUnlock(_)
            | Op::RwWriteUnlock(_)
            | Op::CvWait { .. }
            | Op::Notify { .. }
            | Op::ChanTryRecv(_)
            | Op::ChanDropSender(_)
            | Op::ChanDropReceiver(_)
            | Op::Atomic { .. } => true,
            Op::Lock(u) => !*Self::mutex_state(st, *u),
            Op::RwRead(u) => !*Self::rw_state(st, *u).0,
            Op::RwWrite(u) => {
                let (w, r) = Self::rw_state(st, *u);
                !*w && *r == 0
            }
            Op::ChanSend(u) => match Self::chan_state(st, *u) {
                ObjState::Chan {
                    len, cap, receiver, ..
                } => !*receiver || *len < *cap,
                _ => unreachable!(),
            },
            Op::ChanRecv(u) => match Self::chan_state(st, *u) {
                ObjState::Chan { len, senders, .. } => *len > 0 || *senders == 0,
                _ => unreachable!(),
            },
            Op::Join(target) => st
                .threads
                .iter()
                .find(|t| t.uid == *target)
                .is_none_or(|t| matches!(t.status, Status::Finished)),
        }
    }

    fn op_footprint(self_uid: Uid, op: &Op) -> Vec<(Uid, bool)> {
        match op {
            Op::Start => vec![(self_uid, true)],
            Op::Lock(u)
            | Op::Unlock(u)
            | Op::RwWrite(u)
            | Op::RwWriteUnlock(u)
            | Op::ChanSend(u)
            | Op::ChanRecv(u)
            | Op::ChanTryRecv(u)
            | Op::ChanDropSender(u)
            | Op::ChanDropReceiver(u) => vec![(*u, true)],
            Op::RwRead(u) | Op::RwReadUnlock(u) => vec![(*u, false)],
            Op::CvWait { cv, lock, .. } => vec![(*cv, true), (*lock, true)],
            Op::Notify { cv, .. } => vec![(*cv, true)],
            Op::Atomic { obj, write } => vec![(*obj, *write)],
            Op::Join(t) => vec![(*t, false)],
        }
    }

    fn op_desc(op: &Op) -> String {
        match op {
            Op::Start => "start".into(),
            Op::Lock(u) => format!("lock mutex#{}", u),
            Op::Unlock(u) => format!("unlock mutex#{}", u),
            Op::RwRead(u) => format!("read-lock rw#{}", u),
            Op::RwReadUnlock(u) => format!("read-unlock rw#{}", u),
            Op::RwWrite(u) => format!("write-lock rw#{}", u),
            Op::RwWriteUnlock(u) => format!("write-unlock rw#{}", u),
            Op::CvWait { cv, deadline, .. } => match deadline {
                Some(d) => format!("wait cv#{} (deadline {} ns)", cv, d),
                None => format!("wait cv#{}", cv),
            },
            Op::Notify { cv, all: true } => format!("notify_all cv#{}", cv),
            Op::Notify { cv, all: false } => format!("notify_one cv#{}", cv),
            Op::ChanSend(u) => format!("send ch#{}", u),
            Op::ChanRecv(u) => format!("recv ch#{}", u),
            Op::ChanTryRecv(u) => format!("try_recv ch#{}", u),
            Op::ChanDropSender(u) => format!("drop sender ch#{}", u),
            Op::ChanDropReceiver(u) => format!("drop receiver ch#{}", u),
            Op::Atomic { obj, write: true } => format!("atomic-rmw a#{}", obj),
            Op::Atomic { obj, write: false } => format!("atomic-load a#{}", obj),
            Op::Join(t) => format!("join thread#{}", t),
        }
    }

    fn compute_choices(st: &mut Sched) -> Vec<Choice> {
        let mut out = Vec::new();
        for tid in 0..st.threads.len() {
            let (status, name, uid) = {
                let t = &st.threads[tid];
                (t.status.clone(), t.name.clone(), t.uid)
            };
            match status {
                Status::Ready(op) => {
                    if Self::op_enabled(st, &op) {
                        out.push(Choice {
                            tid,
                            kind: ChoiceKind::Step,
                            footprint: Self::op_footprint(uid, &op),
                            desc: format!("{}: {}", name, Self::op_desc(&op)),
                        });
                    }
                }
                Status::Waiting {
                    cv,
                    lock,
                    deadline,
                    wake,
                } => {
                    if wake.is_some() {
                        if !*Self::mutex_state(st, lock) {
                            out.push(Choice {
                                tid,
                                kind: ChoiceKind::Step,
                                footprint: vec![(lock, true)],
                                desc: format!("{}: reacquire mutex#{} after wait", name, lock),
                            });
                        }
                    } else if deadline.is_some() {
                        out.push(Choice {
                            tid,
                            kind: ChoiceKind::Timeout,
                            footprint: vec![(cv, false)],
                            desc: format!("{}: wait timeout on cv#{}", name, cv),
                        });
                    }
                }
                Status::Running | Status::Finished => {}
            }
        }
        out
    }

    /// Pick the next thread to run. Called with the sched lock held by
    /// whichever thread just parked/finished (or by the controller to
    /// start the run). Handles DFS replay, frontier expansion, sleep
    /// sets, preemption bounds, and end-of-run / deadlock detection.
    fn schedule_next(&self, st: &mut SchedGuard<'_>) {
        if st.aborted || st.run_done {
            return;
        }
        if st
            .threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
        {
            st.run_done = true;
            self.ctrl.notify_all();
            return;
        }
        if st.steps >= st.opts.max_steps {
            self.fail(st, ViolationKind::Livelock);
            return;
        }

        let depth = st.depth;
        if depth >= st.nodes.len() {
            // Frontier: build a new decision node.
            let enabled = Self::compute_choices(st);
            if enabled.is_empty() {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .filter(|t| !matches!(t.status, Status::Finished))
                    .map(|t| format!("{} ({})", t.name, Self::status_desc(&t.status)))
                    .collect();
                self.fail(st, ViolationKind::Deadlock(blocked));
                return;
            }
            let sleep_entry = st.cur_sleep.clone();
            let mut choices: Vec<Choice> = enabled
                .iter()
                .filter(|c| !sleep_entry.iter().any(|(t, _)| *t == c.tid))
                .cloned()
                .collect();
            let prev_tid = st.prev_tid;
            let prev_enabled = prev_tid.is_some_and(|p| enabled.iter().any(|c| c.tid == p));
            if let Some(bound) = st.opts.preemption_bound {
                if st.preemptions >= bound && prev_enabled {
                    choices.retain(|c| Some(c.tid) == prev_tid);
                }
            }
            if choices.is_empty() {
                // All enabled choices are asleep: every continuation is
                // equivalent to an already-explored order. Cut the run.
                st.pruned += 1;
                self.abort_run(st);
                return;
            }
            st.nodes.push(Node {
                choices,
                idx: 0,
                sleep_entry,
                prev_enabled,
                prev_tid,
            });
        }

        // Take the scheduled choice at this node (replay or fresh).
        let node = &st.nodes[depth];
        let choice = node.choices[node.idx].clone();
        let node_prev_tid = node.prev_tid;
        let prev_enabled = node.prev_enabled;
        // Sleep set for the next decision: entry sleep plus explored
        // siblings, minus everything dependent on the chosen op.
        let mut next_sleep = node.sleep_entry.clone();
        for sib in &node.choices[..node.idx] {
            if !next_sleep.iter().any(|(t, _)| *t == sib.tid) {
                next_sleep.push((sib.tid, sib.footprint.clone()));
            }
        }
        next_sleep
            .retain(|(t, fp)| *t != choice.tid && !footprint_conflicts(fp, &choice.footprint));

        if prev_enabled && node_prev_tid.is_some() && node_prev_tid != Some(choice.tid) {
            st.preemptions += 1;
        }
        st.cur_sleep = next_sleep;
        st.prev_tid = Some(choice.tid);
        st.depth += 1;
        st.steps += 1;
        st.transitions += 1;
        st.trace.push(choice.desc.clone());
        st.chosen = Some((choice.tid, choice.kind));
        self.cv.notify_all();
    }

    fn status_desc(status: &Status) -> String {
        match status {
            Status::Ready(op) => format!("blocked at {}", Self::op_desc(op)),
            Status::Waiting { cv, wake: None, .. } => format!("waiting on cv#{}", cv),
            Status::Waiting {
                lock,
                wake: Some(_),
                ..
            } => {
                format!("reacquiring mutex#{}", lock)
            }
            Status::Running => "running".into(),
            Status::Finished => "finished".into(),
        }
    }

    fn fail(&self, st: &mut SchedGuard<'_>, kind: ViolationKind) {
        if st.violation.is_none() {
            st.violation = Some(Violation {
                kind,
                trace: st.trace.clone(),
                schedules: st.schedules,
            });
        }
        self.abort_run(st);
    }

    /// Wake every parked thread into a `ModelAbort` unwind and let the
    /// controller collect them.
    fn abort_run(&self, st: &mut SchedGuard<'_>) {
        st.aborted = true;
        st.chosen = None;
        if st
            .threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
        {
            st.run_done = true;
            self.ctrl.notify_all();
        }
        self.cv.notify_all();
    }

    /// Record a panic from a model thread. A panic observed after a
    /// deadlock was (mis)diagnosed is the root cause: prefer it.
    fn record_panic(&self, st: &mut SchedGuard<'_>, msg: String) {
        let replace = match &st.violation {
            None => true,
            Some(v) => matches!(v.kind, ViolationKind::Deadlock(_)),
        };
        if replace {
            st.violation = Some(Violation {
                kind: ViolationKind::Panic(msg),
                trace: st.trace.clone(),
                schedules: st.schedules,
            });
        }
        self.abort_run(st);
    }

    // ---- thread lifecycle ----

    /// Register a new model thread (status `Ready(Start)`); returns its
    /// tid. Called by the spawning thread *before* the OS thread runs,
    /// so the scheduler can choose the child without racing its
    /// startup.
    pub(crate) fn register_thread(&self, name: String) -> (usize, Uid) {
        let mut st = self.sched();
        st.uid_counter += 1;
        let uid = st.uid_counter;
        st.threads.push(ThreadRec {
            name,
            uid,
            status: Status::Ready(Op::Start),
        });
        (st.threads.len() - 1, uid)
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.sched().os_handles.push(h);
    }

    /// Body of every model OS thread: wait to be started, run the
    /// closure, convert panics into violations.
    fn run_thread(self: &Arc<Self>, tid: usize, f: impl FnOnce()) {
        set_current(Some(Arc::clone(self)));
        // Consume the initial Start op (parks until first scheduled).
        let ok = self.wait_for_grant(tid);
        let result = if ok {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        } else {
            Ok(()) // aborted before ever running
        };
        let mut st = self.sched();
        st.threads[tid].status = Status::Finished;
        match result {
            Ok(()) => {}
            Err(payload) => {
                if payload.downcast_ref::<ModelAbort>().is_none() {
                    let msg = panic_message(payload);
                    self.record_panic(&mut st, msg);
                }
            }
        }
        if st.aborted {
            if st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                st.run_done = true;
                self.ctrl.notify_all();
            }
        } else {
            // Finishing is not a decision: it commutes with every other
            // operation except `Join(self)`, which only becomes enabled
            // by it — so just hand the token to the scheduler.
            self.schedule_next(&mut st);
        }
        drop(st);
        set_current(None);
    }

    /// Park until this thread is granted the token via `Step` while in
    /// `Ready(Start)` state. Returns false if the run aborted first.
    fn wait_for_grant(&self, tid: usize) -> bool {
        let mut st = self.sched();
        loop {
            if st.aborted {
                return false;
            }
            if st.chosen == Some((tid, ChoiceKind::Step)) {
                st.chosen = None;
                st.threads[tid].status = Status::Running;
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    // ---- the yield protocol ----

    /// Park at `op`, let the scheduler branch, execute the operation
    /// when chosen, return its outcome. The calling thread must be a
    /// model thread currently holding the token.
    pub(crate) fn yield_op(&self, tid: usize, op: Op) -> Outcome {
        let mut st = self.sched();
        if st.aborted {
            drop(st);
            return self.on_aborted();
        }
        st.threads[tid].status = Status::Ready(op);
        self.schedule_next(&mut st);
        loop {
            if st.aborted {
                drop(st);
                return self.on_aborted();
            }
            if st.chosen == Some((tid, ChoiceKind::Step)) {
                st.chosen = None;
                let op = match std::mem::replace(&mut st.threads[tid].status, Status::Running) {
                    Status::Ready(op) => op,
                    other => panic!("granted thread in state {:?}", other),
                };
                return Self::execute(&mut st, &op);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A full condvar wait: park at the `CvWait` op (the decision to
    /// release the lock and sleep), then wait to be woken by a notify
    /// or a timeout choice, then contend to reacquire the mutex.
    /// Returns true iff the wake was a timeout.
    pub(crate) fn cv_wait(
        &self,
        tid: usize,
        cv: Uid,
        lock: Uid,
        timeout: Option<Duration>,
    ) -> bool {
        let mut st = self.sched();
        if st.aborted {
            drop(st);
            self.on_aborted();
            return true;
        }
        let deadline = timeout.map(|d| {
            st.clock
                .saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64)
        });
        st.threads[tid].status = Status::Ready(Op::CvWait { cv, lock, deadline });
        self.schedule_next(&mut st);
        loop {
            if st.aborted {
                drop(st);
                self.on_aborted();
                return true;
            }
            match st.chosen {
                Some((t, ChoiceKind::Step)) if t == tid => {
                    st.chosen = None;
                    match std::mem::replace(&mut st.threads[tid].status, Status::Running) {
                        Status::Ready(Op::CvWait { cv, lock, deadline }) => {
                            // Execute the wait entry: release the mutex
                            // and go to sleep; the call does not return
                            // yet.
                            *Self::mutex_state(&mut st, lock) = false;
                            st.threads[tid].status = Status::Waiting {
                                cv,
                                lock,
                                deadline,
                                wake: None,
                            };
                            self.schedule_next(&mut st);
                        }
                        Status::Waiting { lock, wake, .. } => {
                            // Reacquire the mutex and return.
                            *Self::mutex_state(&mut st, lock) = true;
                            st.threads[tid].status = Status::Running;
                            return wake.unwrap_or(false);
                        }
                        other => panic!("cv_wait grant in state {:?}", other),
                    }
                }
                Some((t, ChoiceKind::Timeout)) if t == tid => {
                    st.chosen = None;
                    if let Status::Waiting { deadline, wake, .. } = &mut st.threads[tid].status {
                        *wake = Some(true);
                        let d = deadline.unwrap_or(0);
                        st.clock = st.clock.max(d);
                    }
                    self.schedule_next(&mut st);
                }
                _ => {
                    st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Called at a yield point when the run has been aborted. During a
    /// normal operation this unwinds the thread (`ModelAbort`); during
    /// drop-glue of an already-unwinding thread it degrades to a no-op
    /// so cleanup can finish.
    fn on_aborted(&self) -> Outcome {
        if std::thread::panicking() {
            Outcome::Unit
        } else {
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Apply the state effect of an operation. Data effects (pushing a
    /// value, taking a guard) happen in the facade right after this
    /// returns, while the thread still runs exclusively.
    fn execute(st: &mut SchedGuard<'_>, op: &Op) -> Outcome {
        match op {
            Op::Start | Op::Join(_) => Outcome::Unit,
            Op::Lock(u) => {
                *Self::mutex_state(st, *u) = true;
                Outcome::Unit
            }
            Op::Unlock(u) => {
                *Self::mutex_state(st, *u) = false;
                Outcome::Unit
            }
            Op::RwRead(u) => {
                *Self::rw_state(st, *u).1 += 1;
                Outcome::Unit
            }
            Op::RwReadUnlock(u) => {
                let readers = Self::rw_state(st, *u).1;
                *readers = readers.saturating_sub(1);
                Outcome::Unit
            }
            Op::RwWrite(u) => {
                *Self::rw_state(st, *u).0 = true;
                Outcome::Unit
            }
            Op::RwWriteUnlock(u) => {
                *Self::rw_state(st, *u).0 = false;
                Outcome::Unit
            }
            Op::CvWait { .. } => unreachable!("cv_wait handles its own grants"),
            Op::Notify { cv, all } => {
                for t in st.threads.iter_mut() {
                    if let Status::Waiting { cv: wcv, wake, .. } = &mut t.status {
                        if *wcv == *cv && wake.is_none() {
                            *wake = Some(false);
                            if !*all {
                                break;
                            }
                        }
                    }
                }
                Outcome::Unit
            }
            Op::ChanSend(u) => match Self::chan_state(st, *u) {
                ObjState::Chan { len, receiver, .. } => {
                    if !*receiver {
                        Outcome::Disconnected
                    } else {
                        *len += 1;
                        Outcome::Unit
                    }
                }
                _ => unreachable!(),
            },
            Op::ChanRecv(u) => match Self::chan_state(st, *u) {
                ObjState::Chan { len, .. } => {
                    if *len > 0 {
                        *len -= 1;
                        Outcome::RecvReady
                    } else {
                        Outcome::Disconnected
                    }
                }
                _ => unreachable!(),
            },
            Op::ChanTryRecv(u) => match Self::chan_state(st, *u) {
                ObjState::Chan { len, senders, .. } => {
                    if *len > 0 {
                        *len -= 1;
                        Outcome::RecvReady
                    } else if *senders == 0 {
                        Outcome::Disconnected
                    } else {
                        Outcome::Empty
                    }
                }
                _ => unreachable!(),
            },
            Op::ChanDropSender(u) => match Self::chan_state(st, *u) {
                ObjState::Chan { senders, .. } => {
                    *senders = senders.saturating_sub(1);
                    Outcome::Unit
                }
                _ => unreachable!(),
            },
            Op::ChanDropReceiver(u) => match Self::chan_state(st, *u) {
                ObjState::Chan { receiver, .. } => {
                    *receiver = false;
                    Outcome::Unit
                }
                _ => unreachable!(),
            },
            Op::Atomic { .. } => Outcome::Unit,
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

thread_local! {
    // The tid of the calling model thread; facade ops pass it on every
    // yield.
    static TID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

pub(crate) fn current_tid() -> usize {
    TID.with(|t| t.get())
}

fn set_tid(tid: usize) {
    TID.with(|t| t.set(tid));
}

/// Spawn a child model thread running `f`; returns (tid, thread uid).
/// Used by the `thread` facade.
pub(crate) fn spawn_model_thread(
    cx: &Arc<Ctx>,
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> (usize, Uid) {
    let (tid, uid) = cx.register_thread(name.clone());
    let cx2 = Arc::clone(cx);
    let os = std::thread::Builder::new()
        .name(format!("fmm-model-{}", name))
        .spawn(move || {
            set_tid(tid);
            cx2.run_thread(tid, f);
        })
        .expect("spawn model thread");
    cx.push_os_handle(os);
    (tid, uid)
}

/// Explore every schedule of `f`. Returns the exploration summary, or
/// the first violating schedule.
pub fn explore<F>(opts: &Options, f: F) -> Result<Explored, Box<Violation>>
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        !active(),
        "nested fmm_sync::model::explore is not supported"
    );
    install_abort_hook();
    let cx = Arc::new(Ctx::new(opts.clone()));
    let f = Arc::new(f);
    loop {
        // Reset per-run state; DFS nodes and totals persist.
        {
            let mut st = cx.sched();
            st.threads.clear();
            st.objects.clear();
            st.chosen = None;
            st.uid_counter = RUN_UID_BASE;
            st.clock = 0;
            st.aborted = false;
            st.run_done = false;
            st.depth = 0;
            st.cur_sleep.clear();
            st.prev_tid = None;
            st.preemptions = 0;
            st.trace.clear();
            st.steps = 0;
        }
        // Root thread.
        let (tid, _uid) = cx.register_thread("main".to_string());
        debug_assert_eq!(tid, 0);
        let cx2 = Arc::clone(&cx);
        let f2 = Arc::clone(&f);
        let os = std::thread::Builder::new()
            .name("fmm-model-main".to_string())
            .spawn(move || {
                set_tid(0);
                cx2.run_thread(0, move || f2());
            })
            .expect("spawn model root thread");
        cx.push_os_handle(os);
        // Kick off the run and wait for it to finish.
        {
            let mut st = cx.sched();
            cx.schedule_next(&mut st);
            while !st.run_done {
                st = cx.ctrl.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let handles = std::mem::take(&mut cx.sched().os_handles);
        for h in handles {
            let _ = h.join();
        }

        let mut st = cx.sched();
        if let Some(v) = st.violation.take() {
            return Err(Box::new(v));
        }
        let was_pruned = st.aborted;
        if !was_pruned {
            st.schedules += 1;
        }
        // Backtrack: advance the deepest node with an unexplored child.
        while let Some(node) = st.nodes.last_mut() {
            node.idx += 1;
            if node.idx < node.choices.len() {
                break;
            }
            st.nodes.pop();
        }
        let exhausted = st.nodes.is_empty();
        let budget_hit = st.opts.max_schedules > 0 && st.schedules >= st.opts.max_schedules;
        if exhausted || budget_hit {
            return Ok(Explored {
                schedules: st.schedules,
                pruned: st.pruned,
                transitions: st.transitions,
                complete: exhausted,
            });
        }
    }
}

/// Advance the virtual clock by `d` (model threads only; no-op outside
/// a model). Lets tests move time past a batching window without a
/// timed wait.
pub fn advance(d: Duration) {
    if let Some(cx) = current() {
        cx.clock_advance(d);
    }
}
