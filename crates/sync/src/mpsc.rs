//! mpsc facade over `std::sync::mpsc`. Under the model, send / recv /
//! try_recv and endpoint drops are visible operations; the values
//! themselves live in a plain `VecDeque` that only the token-holding
//! thread ever touches.

use crate::model::{self, Ctx, Op, Outcome, Uid};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

struct ChanInner<T> {
    uid: Uid,
    q: StdMutex<VecDeque<T>>,
}

impl<T> ChanInner<T> {
    fn push(&self, v: T) {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(v);
    }

    fn pop(&self) -> Option<T> {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }
}

enum SenderRepr<T> {
    Std(std::sync::mpsc::Sender<T>),
    Model(Arc<ChanInner<T>>, Arc<Ctx>),
}

enum SyncSenderRepr<T> {
    Std(std::sync::mpsc::SyncSender<T>),
    Model(Arc<ChanInner<T>>, Arc<Ctx>),
}

enum ReceiverRepr<T> {
    Std(std::sync::mpsc::Receiver<T>),
    Model(Arc<ChanInner<T>>, Arc<Ctx>),
}

/// Asynchronous (unbounded) sender.
pub struct Sender<T>(SenderRepr<T>);

/// Bounded sender.
pub struct SyncSender<T>(SyncSenderRepr<T>);

/// Receiving half of either channel flavor.
pub struct Receiver<T>(ReceiverRepr<T>);

/// Unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    match model::current() {
        None => {
            let (tx, rx) = std::sync::mpsc::channel();
            (Sender(SenderRepr::Std(tx)), Receiver(ReceiverRepr::Std(rx)))
        }
        Some(cx) => {
            let inner = Arc::new(ChanInner {
                uid: model::fresh_uid(),
                q: StdMutex::new(VecDeque::new()),
            });
            cx.register_chan(inner.uid, usize::MAX);
            (
                Sender(SenderRepr::Model(Arc::clone(&inner), Arc::clone(&cx))),
                Receiver(ReceiverRepr::Model(inner, cx)),
            )
        }
    }
}

/// Bounded channel with capacity `cap` (`sync_channel(0)` rendezvous
/// semantics are not modeled; the model treats 0 as 1).
pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
    match model::current() {
        None => {
            let (tx, rx) = std::sync::mpsc::sync_channel(cap);
            (
                SyncSender(SyncSenderRepr::Std(tx)),
                Receiver(ReceiverRepr::Std(rx)),
            )
        }
        Some(cx) => {
            let inner = Arc::new(ChanInner {
                uid: model::fresh_uid(),
                q: StdMutex::new(VecDeque::new()),
            });
            cx.register_chan(inner.uid, cap.max(1));
            (
                SyncSender(SyncSenderRepr::Model(Arc::clone(&inner), Arc::clone(&cx))),
                Receiver(ReceiverRepr::Model(inner, cx)),
            )
        }
    }
}

fn model_send<T>(inner: &ChanInner<T>, cx: &Arc<Ctx>, v: T) -> Result<(), SendError<T>> {
    match cx.yield_op(model::current_tid(), Op::ChanSend(inner.uid)) {
        Outcome::Unit => {
            inner.push(v);
            Ok(())
        }
        Outcome::Disconnected => Err(SendError(v)),
        other => unreachable!("send outcome {:?}", other),
    }
}

impl<T> Sender<T> {
    pub fn send(&self, v: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderRepr::Std(tx) => tx.send(v),
            SenderRepr::Model(inner, cx) => model_send(inner, cx, v),
        }
    }
}

impl<T> SyncSender<T> {
    /// Blocks while the queue is at capacity (a scheduling point under
    /// the model).
    pub fn send(&self, v: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SyncSenderRepr::Std(tx) => tx.send(v),
            SyncSenderRepr::Model(inner, cx) => model_send(inner, cx, v),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SenderRepr::Std(tx) => Sender(SenderRepr::Std(tx.clone())),
            SenderRepr::Model(inner, cx) => {
                cx.chan_sender_cloned(inner.uid);
                Sender(SenderRepr::Model(Arc::clone(inner), Arc::clone(cx)))
            }
        }
    }
}

impl<T> Clone for SyncSender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SyncSenderRepr::Std(tx) => SyncSender(SyncSenderRepr::Std(tx.clone())),
            SyncSenderRepr::Model(inner, cx) => {
                cx.chan_sender_cloned(inner.uid);
                SyncSender(SyncSenderRepr::Model(Arc::clone(inner), Arc::clone(cx)))
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let SenderRepr::Model(inner, cx) = &self.0 {
            if model::active() {
                cx.yield_op(model::current_tid(), Op::ChanDropSender(inner.uid));
            }
        }
    }
}

impl<T> Drop for SyncSender<T> {
    fn drop(&mut self) {
        if let SyncSenderRepr::Model(inner, cx) = &self.0 {
            if model::active() {
                cx.yield_op(model::current_tid(), Op::ChanDropSender(inner.uid));
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value or until every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            ReceiverRepr::Std(rx) => rx.recv(),
            ReceiverRepr::Model(inner, cx) => {
                match cx.yield_op(model::current_tid(), Op::ChanRecv(inner.uid)) {
                    Outcome::RecvReady => Ok(inner.pop().expect("model grant implies a value")),
                    Outcome::Disconnected => Err(RecvError),
                    other => unreachable!("recv outcome {:?}", other),
                }
            }
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.0 {
            ReceiverRepr::Std(rx) => rx.try_recv(),
            ReceiverRepr::Model(inner, cx) => {
                match cx.yield_op(model::current_tid(), Op::ChanTryRecv(inner.uid)) {
                    Outcome::RecvReady => Ok(inner.pop().expect("model grant implies a value")),
                    Outcome::Disconnected => Err(TryRecvError::Disconnected),
                    Outcome::Empty => Err(TryRecvError::Empty),
                    other => unreachable!("try_recv outcome {:?}", other),
                }
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let ReceiverRepr::Model(inner, cx) = &self.0 {
            if model::active() {
                cx.yield_op(model::current_tid(), Op::ChanDropReceiver(inner.uid));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_paths_round_trip() {
        let (tx, rx) = channel();
        tx.send(41).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        let (stx, srx) = sync_channel(1);
        stx.clone().send("x").unwrap();
        assert_eq!(srx.recv().unwrap(), "x");
        drop(stx);
        assert_eq!(srx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
