//! Process-wide traversal-plan registry.
//!
//! PR 1 gave every [`crate::Fmm`] a private per-depth plan cache; a
//! long-running evaluation service (fmm-serve) builds many `Fmm`
//! instances — one per tenant configuration — whose plans are identical
//! whenever `(depth, K, separation, executor, kernel, precision)` agree.
//! The [`PlanRegistry`] promotes the cache to a shared, concurrently
//! readable structure: a `RwLock`ed map handing out `Arc` snapshots of
//! immutable [`TraversalPlan`]s, with an LRU capacity bound and admission
//! counters (`plan_builds` / `plan_hits` / `evictions`) so a service can
//! report cache efficiency per process, not per instance.
//!
//! Reads take the shared lock only; the recency stamp is an atomic inside
//! each entry, so concurrent hits never serialize on the write lock.
//! Misses take the exclusive lock and build *inside* it (double-checked),
//! which guarantees a key is never built twice even under a thundering
//! herd — the service's coalesced batches rely on "one `plan_builds` per
//! distinct shape" being exact, not approximate.

use crate::config::{Executor, Precision};
use crate::plan::TraversalPlan;
use fmm_linalg::Kernel;
use fmm_sync::atomic::{AtomicU64, Ordering};
use fmm_sync::RwLock;
use fmm_tree::Separation;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Everything a cached plan is keyed by. `depth`, `separation` and
/// `kernel` determine the plan's contents; `k` (sphere-rule size),
/// `executor` and `precision` are discriminators so instances with
/// different execution shapes never alias a plan entry (their eviction
/// behaviour and metrics stay attributable per shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub depth: u32,
    /// Sphere-rule size K of the owning configuration.
    pub k: usize,
    pub separation: Separation,
    pub executor: Executor,
    pub kernel: Kernel,
    pub precision: Precision,
}

struct Entry {
    plan: Arc<TraversalPlan>,
    /// Monotonic recency stamp (from [`PlanRegistry::tick`]); updated with
    /// a plain atomic store under the *read* lock on every hit.
    last_used: AtomicU64,
}

/// Counter snapshot of a registry (see [`PlanRegistry::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Plans built (misses admitted). Exact: a key is never built twice
    /// while it remains resident.
    pub plan_builds: u64,
    /// Lookups served from a resident plan.
    pub plan_hits: u64,
    /// Entries displaced by the LRU capacity bound.
    pub evictions: u64,
    /// Currently resident plans.
    pub entries: usize,
    /// Capacity bound.
    pub capacity: usize,
}

/// A shared, LRU-bounded map from [`PlanKey`] to immutable
/// [`TraversalPlan`] snapshots. See the module docs.
pub struct PlanRegistry {
    // det: keyed lookups plus a min-by-unique-recency eviction scan; no
    // result depends on the map's iteration order (recency stamps are
    // unique, so the LRU minimum is unique).
    map: RwLock<HashMap<PlanKey, Entry>>,
    capacity: usize,
    tick: AtomicU64,
    builds: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanRegistry")
            .field("entries", &s.entries)
            .field("capacity", &s.capacity)
            .field("plan_builds", &s.plan_builds)
            .field("plan_hits", &s.plan_hits)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl PlanRegistry {
    /// Default capacity of per-`Fmm` private registries (kept generous: a
    /// single instance rarely visits more than a handful of depths).
    pub const DEFAULT_CAPACITY: usize = 16;

    /// An empty registry bounded to `capacity` resident plans.
    pub fn new(capacity: usize) -> Self {
        PlanRegistry {
            // det: see the field justification.
            map: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide registry (capacity 64). `Fmm::new` does *not* use
    /// it — a private instance keeps library semantics local — but
    /// services that construct many instances share it via
    /// [`crate::Fmm::with_registry`].
    pub fn global() -> &'static Arc<PlanRegistry> {
        static GLOBAL: OnceLock<Arc<PlanRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(PlanRegistry::new(64)))
    }

    /// The plan for `key`, built (and admitted) on first use. Hits take
    /// the shared lock only.
    pub fn get_or_build(&self, key: PlanKey) -> Arc<TraversalPlan> {
        self.get_or_build_with(key, || {
            Arc::new(TraversalPlan::build_with(
                key.depth,
                key.separation,
                key.kernel,
            ))
        })
    }

    /// [`Self::get_or_build`] with a caller-supplied constructor: the
    /// seam that lets the fmm-check interleaving models and the
    /// Miri/TSan stress tests exercise the full locking protocol
    /// (read-path hit, double-checked write-path build, LRU eviction)
    /// without paying for real plan builds on every explored schedule.
    pub fn get_or_build_with(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Arc<TraversalPlan>,
    ) -> Arc<TraversalPlan> {
        {
            let map = self.map.read().unwrap();
            if let Some(e) = map.get(&key) {
                e.last_used
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e.plan.clone();
            }
        }
        let mut map = self.map.write().unwrap();
        // Double-check: someone else may have built it while we queued.
        if let Some(e) = map.get(&key) {
            e.last_used
                .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e.plan.clone();
        }
        // Build inside the exclusive section so a key is built exactly
        // once (plan builds are milliseconds; a herd re-building the same
        // plan would cost more than the serialization does).
        let plan = build();
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(
            key,
            Entry {
                plan: plan.clone(),
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            },
        );
        while map.len() > self.capacity {
            // det: recency stamps are unique, so the minimum is unique and
            // the evicted key does not depend on iteration order.
            let victim = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
                .expect("non-empty over capacity");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        plan
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            plan_builds: self.builds.load(Ordering::Relaxed),
            plan_hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.map.read().unwrap().len(),
            capacity: self.capacity,
        }
    }

    /// Keys and approximate heap footprints of the resident plans, sorted
    /// by key for a deterministic listing (diagnostics / `info` endpoint).
    pub fn snapshot(&self) -> Vec<(PlanKey, usize)> {
        let map = self.map.read().unwrap();
        let mut v: Vec<(PlanKey, usize)> = map
            .iter()
            .map(|(k, e)| (*k, e.plan.memory_bytes()))
            .collect();
        // det: sorted before exposure, so callers never observe map order.
        v.sort_by_key(|(k, _)| {
            (
                k.depth,
                k.k,
                format!("{:?}", (k.separation, k.executor, k.kernel, k.precision)),
            )
        });
        v
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(depth: u32) -> PlanKey {
        PlanKey {
            depth,
            k: 12,
            separation: Separation::Two,
            executor: Executor::Rayon,
            kernel: Kernel::Scalar,
            precision: Precision::F64,
        }
    }

    #[test]
    fn hit_does_not_rebuild() {
        let r = PlanRegistry::new(4);
        let a = r.get_or_build(key(2));
        let b = r.get_or_build(key(2));
        assert!(Arc::ptr_eq(&a, &b));
        let s = r.stats();
        assert_eq!((s.plan_builds, s.plan_hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_stalest_key() {
        let r = PlanRegistry::new(2);
        r.get_or_build(key(2));
        r.get_or_build(key(3));
        r.get_or_build(key(2)); // refresh depth-2 → depth-3 is now stalest
        r.get_or_build(key(4)); // evicts depth-3
        let s = r.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        let depths: Vec<u32> = r.snapshot().iter().map(|(k, _)| k.depth).collect();
        assert_eq!(depths, vec![2, 4]);
        // Re-requesting the evicted key is a fresh build.
        r.get_or_build(key(3));
        assert_eq!(r.stats().plan_builds, 4);
    }

    #[test]
    fn distinct_discriminators_do_not_alias() {
        let r = PlanRegistry::new(8);
        r.get_or_build(key(2));
        let mut mixed = key(2);
        mixed.precision = Precision::Mixed;
        r.get_or_build(mixed);
        assert_eq!(r.stats().plan_builds, 2);
    }

    // The `concurrent_*` tests below use `get_or_build_with` with a
    // cheap constructor (cloning one prebuilt plan) so they stay fast
    // enough for Miri and ThreadSanitizer, which run them in CI.

    #[test]
    fn concurrent_get_or_build_with_builds_once() {
        let proto = Arc::new(TraversalPlan::build_with(
            2,
            Separation::Two,
            Kernel::Scalar,
        ));
        let r = Arc::new(PlanRegistry::new(4));
        let invocations = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (r, proto, invocations) = (r.clone(), proto.clone(), invocations.clone());
                std::thread::spawn(move || {
                    let p = r.get_or_build_with(key(2), || {
                        invocations.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        proto.clone()
                    });
                    assert!(Arc::ptr_eq(&p, &proto));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(invocations.load(std::sync::atomic::Ordering::SeqCst), 1);
        let s = r.stats();
        assert_eq!((s.plan_builds, s.plan_hits, s.entries), (1, 3, 1));
    }

    #[test]
    fn concurrent_distinct_keys_build_each_once() {
        let proto = Arc::new(TraversalPlan::build_with(
            2,
            Separation::Two,
            Kernel::Scalar,
        ));
        let r = Arc::new(PlanRegistry::new(8));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let (r, proto) = (r.clone(), proto.clone());
                std::thread::spawn(move || {
                    for depth in 2..5 {
                        let _ = r.get_or_build_with(key(depth), || proto.clone());
                    }
                    i
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = r.stats();
        assert_eq!(s.plan_builds, 3, "one build per distinct key");
        assert_eq!(s.plan_hits, 4 * 3 - 3);
    }
}
