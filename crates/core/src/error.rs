//! Accuracy metrics.
//!
//! The paper quotes accuracy as digits relative to system-scale quantities
//! (its ε₁ is "the error bound per partial acceleration relative to the
//! mean acceleration of the system"). The analogous potential-based
//! metrics here: RMS and max error normalized by the RMS of the reference
//! potential.

/// Error statistics of an approximate result against a reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// √(Σ(φ−φ*)²/N) / √(Σφ*²/N)
    pub rms_rel: f64,
    /// max |φ−φ*| / √(Σφ*²/N)
    pub max_rel: f64,
    /// √(Σ(φ−φ*)²/N)
    pub rms_abs: f64,
    /// Number of samples compared.
    pub n: usize,
}

impl ErrorStats {
    /// Correct digits implied by the relative RMS error.
    pub fn digits(&self) -> f64 {
        if self.rms_rel <= 0.0 {
            f64::INFINITY
        } else {
            -self.rms_rel.log10()
        }
    }
}

/// Compare `approx` against `reference` element-wise.
pub fn relative_error_stats(approx: &[f64], reference: &[f64]) -> ErrorStats {
    assert_eq!(approx.len(), reference.len());
    assert!(!approx.is_empty());
    let n = approx.len();
    let mut sum_sq = 0.0;
    let mut ref_sq = 0.0;
    let mut max_abs: f64 = 0.0;
    for (a, r) in approx.iter().zip(reference) {
        let e = a - r;
        sum_sq += e * e;
        ref_sq += r * r;
        max_abs = max_abs.max(e.abs());
    }
    let rms_abs = (sum_sq / n as f64).sqrt();
    let ref_rms = (ref_sq / n as f64).sqrt();
    let denom = if ref_rms > 0.0 { ref_rms } else { 1.0 };
    ErrorStats {
        rms_rel: rms_abs / denom,
        max_rel: max_abs / denom,
        rms_abs,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error() {
        let v = vec![1.0, -2.0, 3.0];
        let s = relative_error_stats(&v, &v);
        assert_eq!(s.rms_rel, 0.0);
        assert_eq!(s.max_rel, 0.0);
        assert!(s.digits().is_infinite());
    }

    #[test]
    fn known_error() {
        let approx = vec![1.1, 2.0];
        let reference = vec![1.0, 2.0];
        let s = relative_error_stats(&approx, &reference);
        let ref_rms = (5.0f64 / 2.0).sqrt();
        assert!((s.rms_abs - (0.01f64 / 2.0).sqrt()).abs() < 1e-15);
        assert!((s.max_rel - 0.1 / ref_rms).abs() < 1e-15);
        assert_eq!(s.n, 2);
    }

    #[test]
    fn digits_log_scale() {
        let approx = vec![1.0001];
        let reference = vec![1.0];
        let s = relative_error_stats(&approx, &reference);
        assert!((s.digits() - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = relative_error_stats(&[1.0], &[1.0, 2.0]);
    }
}
