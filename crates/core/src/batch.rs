//! Batched multi-request evaluation.
//!
//! The paper's central optimization (§2, item 2) aggregates many small
//! O(P²) translations into a few large matrix products. A serving
//! workload re-creates the original problem one level up: many small
//! *requests*, each of whose traversals is a stream of tiny GEMMs whose
//! dispatch/gather overhead dwarfs their arithmetic. This module replays
//! the same trick across requests: `R` same-shape evaluations share one
//! [`crate::TraversalPlan`] and run their upward/downward sweeps through
//! [`crate::traversal::upward_level_batch`] /
//! [`crate::traversal::downward_level_batch`], which issue one GEMM of
//! `R · np` rows per (slab, octant, offset) instead of `R` GEMMs of `np`
//! rows — and compute the per-offset source geometry once instead of `R`
//! times. The near field batches the same way: the travelling sweep's
//! path and per-step box maps are instance-independent, so
//! [`crate::near::near_field_travelling_batch_with`] derives them once
//! and loops instances innermost. Purely particle-bound phases (binning,
//! P2O, leaf evaluation) have no cross-request structure to exploit and
//! stay per-instance.
//!
//! Each request's results are **bitwise identical** to a solo
//! [`Fmm::evaluate`] of the same inputs: the GEMM microkernels compute
//! every output row independently of the panel's total row count, and
//! instance panels are concatenated on row-tile boundaries (see the
//! batched level sweeps), so batching changes scheduling, never
//! arithmetic. fmm-serve's coalescing batcher relies on this — a request
//! cannot observe whether it was batched.

use crate::driver::{eval_local, p2o, EvalOutput, Fmm, FmmError};
use crate::field::FieldHierarchy;
use crate::near::{near_field_forces_softened, near_field_travelling_batch_with, NearFieldStats};
use crate::near32::{near_field_forces_f32, near_field_potentials_f32};
use crate::particles::BinnedParticles;
use crate::traversal::{downward_level_batch, upward_level_batch};
use fmm_tree::{Domain, Hierarchy};

/// One evaluation request: a particle system to run the configured method
/// on. The domain is inferred from the positions' bounding cube, exactly
/// as [`Fmm::evaluate`] does.
#[derive(Debug, Clone, Copy)]
pub struct BatchRequest<'a> {
    pub positions: &'a [[f64; 3]],
    pub charges: &'a [f64],
}

/// Results of a batched evaluation: per-request slices of concatenated
/// slabs, in request order.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Potentials of all requests, concatenated in request order (each
    /// request's particles in their original order).
    pub potentials: Vec<f64>,
    /// Fields −∇Φ, concatenated like `potentials`, when requested.
    pub fields: Option<Vec<[f64; 3]>>,
    /// Request `i` owns `potentials[offsets[i]..offsets[i + 1]]`
    /// (`offsets.len() == requests + 1`).
    pub offsets: Vec<usize>,
    /// Hierarchy depth shared by the batch.
    pub depth: u32,
    /// Near-field counters summed over the batch.
    pub near_stats: NearFieldStats,
}

impl BatchOutput {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Request `i`'s potentials (original particle order).
    pub fn potentials_of(&self, i: usize) -> &[f64] {
        &self.potentials[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Request `i`'s fields, when the batch was run with forces.
    pub fn fields_of(&self, i: usize) -> Option<&[[f64; 3]]> {
        self.fields
            .as_ref()
            .map(|f| &f[self.offsets[i]..self.offsets[i + 1]])
    }
}

impl Fmm {
    /// Evaluate many same-shape requests as one coalesced batch. All
    /// requests must resolve to the same hierarchy depth (fixed-depth
    /// configurations always do; adaptive-depth configurations must
    /// receive requests the policy maps to one depth). Each request's
    /// potentials are bitwise identical to a solo [`Fmm::evaluate`].
    pub fn evaluate_batch(&self, requests: &[BatchRequest<'_>]) -> Result<BatchOutput, FmmError> {
        self.run_batch(requests, false)
    }

    /// [`Fmm::evaluate_batch`] with fields (−∇Φ), the batched analogue of
    /// [`Fmm::evaluate_forces`].
    pub fn evaluate_batch_forces(
        &self,
        requests: &[BatchRequest<'_>],
    ) -> Result<BatchOutput, FmmError> {
        self.run_batch(requests, true)
    }

    fn run_batch(
        &self,
        requests: &[BatchRequest<'_>],
        with_fields: bool,
    ) -> Result<BatchOutput, FmmError> {
        if requests.is_empty() {
            return Err(FmmError::BadInput("empty batch".into()));
        }
        for (i, q) in requests.iter().enumerate() {
            if q.positions.is_empty() {
                return Err(FmmError::BadInput(format!("request {i}: no particles")));
            }
            if q.positions.len() != q.charges.len() {
                return Err(FmmError::BadInput(format!(
                    "request {i}: {} positions vs {} charges",
                    q.positions.len(),
                    q.charges.len()
                )));
            }
        }
        if matches!(
            self.cfg.effective_executor(),
            crate::config::Executor::Spmd(_)
        ) {
            // The message-passing backend owns its whole pipeline; batch
            // coalescing is a shared-memory optimization. Fall back to
            // per-request evaluation (still bitwise per-request).
            return self.batch_fallback(requests, with_fields);
        }

        let depth = self.cfg.depth.resolve(requests[0].positions.len());
        for (i, q) in requests.iter().enumerate() {
            let d = self.cfg.depth.resolve(q.positions.len());
            if d != depth {
                return Err(FmmError::BadInput(format!(
                    "request {i} resolves to depth {d}, batch is depth {depth}; \
                     batches must be depth-homogeneous"
                )));
            }
        }
        let k = self.k();
        let par = self.cfg.parallel;
        // One plan lookup for the whole batch: exactly one `plan_builds`
        // when the key is cold, zero when warm.
        let plan = self.plan_for(depth);

        // Per-instance setup + P2O (particle-bound, no cross-request
        // structure).
        let mut bps: Vec<BinnedParticles> = Vec::with_capacity(requests.len());
        let mut fhs: Vec<FieldHierarchy> = Vec::with_capacity(requests.len());
        let mut b_leaves: Vec<f64> = Vec::with_capacity(requests.len());
        for q in requests {
            let domain = Domain::bounding(q.positions);
            let bp = BinnedParticles::build(q.positions, q.charges, domain, depth);
            let mut fh = FieldHierarchy::new(Hierarchy::new(depth), k);
            let leaf_side = domain.box_side(depth);
            let a_leaf = self.cfg.outer_ratio * leaf_side;
            p2o(
                &bp,
                &self.rule,
                a_leaf,
                depth,
                par,
                &mut fh.far[depth as usize],
            );
            b_leaves.push(self.cfg.inner_ratio * leaf_side);
            bps.push(bp);
            fhs.push(fh);
        }

        // Batched hierarchy sweeps over the shared plan.
        if depth >= 3 {
            for l in (1..depth).rev() {
                upward_level_batch(&mut fhs, &self.translations, &plan, l);
            }
        }
        for l in 2..=depth {
            downward_level_batch(&mut fhs, &self.translations, &plan, self.cfg.supernodes, l);
        }

        // Near field. The default f64 potentials path batches the
        // travelling sweep (shared path geometry, instance-inner loops);
        // the forces and mixed-precision variants run per instance below.
        let mixed = self.cfg.precision == crate::config::Precision::Mixed;
        let mut near_pots: Vec<Vec<f64>> = bps.iter().map(|bp| vec![0.0; bp.len()]).collect();
        let mut near_total = NearFieldStats::default();
        if !with_fields && !mixed {
            near_total.merge(&near_field_travelling_batch_with(
                plan.kernel,
                &bps,
                self.cfg.separation,
                self.cfg.softening,
                &mut near_pots,
            ));
        }

        // Per-instance leaf evaluation + remaining near variants + scatter.
        let total: usize = requests.iter().map(|q| q.positions.len()).sum();
        let mut potentials = Vec::with_capacity(total);
        let mut fields = with_fields.then(|| Vec::with_capacity(total));
        let mut offsets = Vec::with_capacity(requests.len() + 1);
        offsets.push(0usize);
        for (i, bp) in bps.iter().enumerate() {
            let mut far_pot = vec![0.0; bp.len()];
            let mut far_field = with_fields.then(|| vec![[0.0f64; 3]; bp.len()]);
            eval_local(
                bp,
                &self.rule,
                self.cfg.m_trunc,
                b_leaves[i],
                depth,
                par,
                &fhs[i].local[depth as usize],
                &mut far_pot,
                far_field.as_deref_mut(),
            );
            let near_pot = &mut near_pots[i];
            if with_fields {
                let mut near_f = vec![[0.0f64; 3]; bp.len()];
                let st = if mixed {
                    near_field_forces_f32(
                        plan.kernel,
                        bp,
                        self.cfg.separation,
                        par,
                        self.cfg.softening,
                        near_pot,
                        &mut near_f,
                    )
                } else {
                    near_field_forces_softened(
                        bp,
                        self.cfg.separation,
                        par,
                        self.cfg.softening,
                        near_pot,
                        &mut near_f,
                    )
                };
                near_total.merge(&st);
                if let Some(ff) = far_field.as_mut() {
                    for (a, b) in ff.iter_mut().zip(&near_f) {
                        for d in 0..3 {
                            a[d] += b[d];
                        }
                    }
                }
            } else if mixed {
                let st = near_field_potentials_f32(
                    plan.kernel,
                    bp,
                    self.cfg.separation,
                    &plan.near_schedule,
                    par,
                    self.cfg.softening,
                    near_pot,
                );
                near_total.merge(&st);
            }
            for (f, n) in far_pot.iter_mut().zip(near_pots[i].iter()) {
                *f += n;
            }
            potentials.extend(bp.binning.scatter(&far_pot));
            if let (Some(all), Some(ff)) = (fields.as_mut(), far_field) {
                all.extend(bp.binning.scatter(&ff));
            }
            offsets.push(potentials.len());
        }

        Ok(BatchOutput {
            potentials,
            fields,
            offsets,
            depth,
            near_stats: near_total,
        })
    }

    /// Per-request fallback used where the batched sweeps do not apply.
    fn batch_fallback(
        &self,
        requests: &[BatchRequest<'_>],
        with_fields: bool,
    ) -> Result<BatchOutput, FmmError> {
        let mut potentials = Vec::new();
        let mut fields = with_fields.then(Vec::new);
        let mut offsets = vec![0usize];
        let mut near_total = NearFieldStats::default();
        let mut depth = 0;
        for q in requests {
            let out: EvalOutput = if with_fields {
                self.evaluate_forces(q.positions, q.charges)?
            } else {
                self.evaluate(q.positions, q.charges)?
            };
            depth = out.depth;
            near_total.merge(&out.near_stats);
            potentials.extend(out.potentials);
            if let (Some(all), Some(f)) = (fields.as_mut(), out.fields) {
                all.extend(f);
            }
            offsets.push(potentials.len());
        }
        Ok(BatchOutput {
            potentials,
            fields,
            offsets,
            depth,
            near_stats: near_total,
        })
    }
}
