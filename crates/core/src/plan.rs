//! Reusable traversal plan.
//!
//! `Fmm::evaluate` used to recompute, on every call, a family of values
//! that depend only on the hierarchy depth and the separation parameter:
//! the per-octant interactive-field offset lists, the supernode
//! decompositions, the T2 matrix lookups, the slab decomposition of every
//! level, and the child gather/scatter index lists that turn panels of
//! parents into panels of children. None of this depends on the particles.
//!
//! A [`TraversalPlan`] hoists all of it into a one-time build, cached on
//! the driver per depth (the separation and rule size K are fixed per
//! `Fmm`). Repeated evaluations — the common case in a time-stepping
//! N-body loop, and the regime the paper's timings in §4 assume once the
//! translation matrices are precomputed (§3.3.4, Figs. 8–9) — then pay
//! only for the GEMMs and the particle work, not for re-deriving the
//! traversal's index structure.

use crate::near::ColorSchedule;
use crate::translations::TranslationSet;
use fmm_linalg::Kernel;
use fmm_tree::{interactive_field_offsets, supernode_decomposition, BoxCoord, Separation};

/// Children of one level's parents along one octant: for parent `p` (in
/// row-major box order), `idx[p]` is the child's box index at the child
/// level and `coord[p]` its (x, y, z) coordinate. These drive the T1/T3
/// panel gathers and scatters and the T2 source-offset arithmetic without
/// any per-row index decoding.
#[derive(Debug, Clone)]
pub struct ChildMap {
    pub idx: Vec<u32>,
    pub coord: Vec<[i32; 3]>,
}

/// Precomputed structure for one parent level.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    /// The parent level this entry describes.
    pub parent_level: u32,
    /// Slab decomposition: ranges of parent box indices, one z-plane each,
    /// whose children occupy disjoint contiguous ranges of the child level.
    pub slabs: Vec<(usize, usize)>,
    /// Per octant (index 0..8): the parents' children along that octant.
    pub children: Vec<ChildMap>,
}

/// Precomputed interaction structure for one child octant.
#[derive(Debug, Clone)]
pub struct OctantPlan {
    /// Plain interactive-field offsets (source − target, child-box units).
    pub offsets: Vec<[i32; 3]>,
    /// Dense-cube index of each offset's T2 matrix in
    /// [`TranslationSet::t2t`], parallel to `offsets`.
    pub t2_idx: Vec<u32>,
    /// Supernode parent-source offsets (parent-box units, applied to the
    /// target's parent coordinate).
    pub sn_parent_offsets: Vec<[i32; 3]>,
    /// Keys into [`TranslationSet::t2t_super`], parallel to
    /// `sn_parent_offsets`.
    pub sn_parent_keys: Vec<[i32; 3]>,
    /// Leftover child-level offsets of the supernode decomposition.
    pub sn_child_offsets: Vec<[i32; 3]>,
    /// Dense-cube T2 indices parallel to `sn_child_offsets`.
    pub sn_child_idx: Vec<u32>,
    /// Total translations per box under supernodes (parents + children).
    pub sn_translation_count: usize,
}

/// Everything the upward/downward passes and the near-field sweep need
/// that depends only on `(depth, separation)`. Built once, reused across
/// evaluations; see the module docs.
#[derive(Debug, Clone)]
pub struct TraversalPlan {
    pub depth: u32,
    pub separation: Separation,
    /// Microkernel family this plan was resolved for. Every consumer of a
    /// cached plan — the shared-memory passes, the near-field sweeps, the
    /// SPMD workers — dispatches through this field, so one `Fmm` always
    /// runs one kernel, bitwise-reproducibly, regardless of backend.
    pub kernel: Kernel,
    /// Per child octant (0..8).
    pub octants: Vec<OctantPlan>,
    /// Parent levels 1..depth, indexed by `parent_level − 1`.
    pub levels: Vec<LevelPlan>,
    /// Colored block schedule for the symmetric near-field sweep at the
    /// leaf level.
    pub near_schedule: ColorSchedule,
}

impl TraversalPlan {
    /// Build the plan for a hierarchy of `depth` levels at `separation`,
    /// recording the host-detected kernel.
    pub fn build(depth: u32, separation: Separation) -> Self {
        Self::build_with(depth, separation, Kernel::detect())
    }

    /// [`TraversalPlan::build`] with an explicit kernel choice.
    pub fn build_with(depth: u32, separation: Separation, kernel: Kernel) -> Self {
        let octants = (0..8usize)
            .map(|oct| {
                let o = [
                    (oct & 1) as i32,
                    ((oct >> 1) & 1) as i32,
                    ((oct >> 2) & 1) as i32,
                ];
                let offsets = interactive_field_offsets(o, separation);
                let t2_idx = offsets
                    .iter()
                    .map(|&off| TranslationSet::t2_index_for(separation, off) as u32)
                    .collect();
                let sd = supernode_decomposition(o, separation);
                let sn_translation_count = sd.translation_count();
                let sn_parent_offsets = sd.parents.iter().map(|p| p.parent_offset).collect();
                let sn_parent_keys = sd.parents.iter().map(|p| p.center_offset_half).collect();
                let sn_child_idx = sd
                    .children
                    .iter()
                    .map(|&off| TranslationSet::t2_index_for(separation, off) as u32)
                    .collect();
                OctantPlan {
                    offsets,
                    t2_idx,
                    sn_parent_offsets,
                    sn_parent_keys,
                    sn_child_offsets: sd.children,
                    sn_child_idx,
                    sn_translation_count,
                }
            })
            .collect();

        let levels = (1..depth.max(1))
            .map(|lp| {
                let n = 1usize << (3 * lp);
                let children = (0..8usize)
                    .map(|oct| {
                        let mut idx = Vec::with_capacity(n);
                        let mut coord = Vec::with_capacity(n);
                        for pi in 0..n {
                            let c = BoxCoord::from_index(lp, pi).child(oct);
                            idx.push(c.index() as u32);
                            coord.push([c.x as i32, c.y as i32, c.z as i32]);
                        }
                        ChildMap { idx, coord }
                    })
                    .collect();
                LevelPlan {
                    parent_level: lp,
                    slabs: parent_slabs(lp),
                    children,
                }
            })
            .collect();

        TraversalPlan {
            depth,
            separation,
            kernel,
            octants,
            levels,
            near_schedule: ColorSchedule::build(depth),
        }
    }

    /// The [`LevelPlan`] for a parent level (1 ≤ `parent_level` < depth).
    #[inline]
    pub fn level(&self, parent_level: u32) -> &LevelPlan {
        &self.levels[(parent_level - 1) as usize]
    }

    /// Approximate heap footprint in bytes (for diagnostics).
    pub fn memory_bytes(&self) -> usize {
        let per_oct: usize = self
            .octants
            .iter()
            .map(|o| {
                (o.offsets.len() + o.sn_parent_offsets.len() * 2 + o.sn_child_offsets.len()) * 12
                    + (o.t2_idx.len() + o.sn_child_idx.len()) * 4
            })
            .sum();
        let per_level: usize = self
            .levels
            .iter()
            .map(|l| {
                l.slabs.len() * 16
                    + l.children
                        .iter()
                        .map(|c| c.idx.len() * 4 + c.coord.len() * 12)
                        .sum::<usize>()
            })
            .sum();
        per_oct + per_level
    }
}

/// Slab decomposition of a parent level: ranges of parent box indices, one
/// z-plane each, whose children occupy disjoint contiguous ranges of the
/// child level.
fn parent_slabs(l_parent: u32) -> Vec<(usize, usize)> {
    let n = 1usize << l_parent; // parents per axis
    let plane = n * n;
    (0..n).map(|z| (z * plane, (z + 1) * plane)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_maps_match_box_arithmetic() {
        let plan = TraversalPlan::build(3, Separation::Two);
        for lp in 1..3u32 {
            let lvl = plan.level(lp);
            assert_eq!(lvl.parent_level, lp);
            let n = 1usize << (3 * lp);
            for oct in 0..8 {
                let cm = &lvl.children[oct];
                assert_eq!(cm.idx.len(), n);
                for pi in (0..n).step_by(5) {
                    let c = BoxCoord::from_index(lp, pi).child(oct);
                    assert_eq!(cm.idx[pi] as usize, c.index());
                    assert_eq!(cm.coord[pi], [c.x as i32, c.y as i32, c.z as i32]);
                }
            }
        }
    }

    #[test]
    fn slabs_tile_each_level() {
        let plan = TraversalPlan::build(4, Separation::One);
        for lp in 1..4u32 {
            let lvl = plan.level(lp);
            let mut next = 0usize;
            for &(a, b) in &lvl.slabs {
                assert_eq!(a, next);
                assert!(b > a);
                next = b;
            }
            assert_eq!(next, 1usize << (3 * lp));
        }
    }

    #[test]
    fn octant_plans_are_consistent_with_tree_queries() {
        for sep in [Separation::One, Separation::Two] {
            let plan = TraversalPlan::build(2, sep);
            for (oct, op) in plan.octants.iter().enumerate() {
                let o = [
                    (oct & 1) as i32,
                    ((oct >> 1) & 1) as i32,
                    ((oct >> 2) & 1) as i32,
                ];
                assert_eq!(op.offsets, interactive_field_offsets(o, sep));
                assert_eq!(op.offsets.len(), op.t2_idx.len());
                let sd = supernode_decomposition(o, sep);
                assert_eq!(op.sn_translation_count, sd.translation_count());
                assert_eq!(op.sn_child_offsets, sd.children);
                assert_eq!(op.sn_parent_offsets.len(), op.sn_parent_keys.len());
            }
        }
    }

    #[test]
    fn near_schedule_is_for_leaf_level() {
        let plan = TraversalPlan::build(3, Separation::Two);
        assert_eq!(plan.near_schedule.level, 3);
        assert!(plan.memory_bytes() > 0);
    }

    #[test]
    fn plan_records_kernel() {
        assert_eq!(
            TraversalPlan::build(2, Separation::Two).kernel,
            Kernel::detect()
        );
        let forced = TraversalPlan::build_with(2, Separation::Two, Kernel::Scalar);
        assert_eq!(forced.kernel, Kernel::Scalar);
    }
}
