//! Mixed-precision near field: f32 SIMD sweeps over an f32 mirror of the
//! binned particle arrays (8 lanes on AVX2, 16 on AVX-512, 4 on NEON).
//!
//! The near field is direct summation — arithmetic-bound, embarrassingly
//! data-parallel, and *locally well-conditioned*: every target sums at
//! most a few thousand terms q/r with r bounded below by particle spacing
//! and above by (d+1) box sides, so no catastrophic cancellation is
//! amplified by the precision drop. That makes it the natural place to
//! trade precision for lane throughput (the far-field traversal stays in
//! f64 — its conditioning is what buys the method's tunable accuracy).
//! Kawai et al.'s low-accuracy GRAPE variants and Makino's
//! pseudo-particle formulation (PAPERS.md) establish the precedent.
//!
//! Accuracy (derived in DESIGN.md §5.5): per interaction the f32 kernel
//! carries ~1e-7 relative error (representation + refined rsqrt).
//! Crucially, f32 accumulation chains are bounded by *one box pair*: each
//! SIMD call sums at most one source box's terms (m ≈ 10–40 particles) in
//! f32 lanes, and the partial is widened to f64 before joining the
//! target's running sum. Source-side (third-law) contributions are
//! widened per term. The worst-case f32 chain error is therefore
//! m_box·ε_f32 ≈ 40·6e-8 ≈ 2.4e-6 relative — comfortably inside the
//! ≤ 1e-5 bound on the standard 40k-particle depth-4 configuration,
//! and validated against the f64 near field and `fmm-direct` by
//! `tests/mixed.rs`. (A whole-neighbourhood f32 accumulator would grow
//! linearly with the ~10³-term target sum and violate the bound.)
//!
//! Arithmetic is f32; accumulation across box pairs is f64, so repeated
//! `evaluate()` calls stay deterministic for a fixed kernel choice.

use crate::near::{NearFieldStats, PAIR_FLOPS, PAIR_FORCE_FLOPS};
use crate::particles::BinnedParticles;
use fmm_linalg::{pairwise, Kernel};
use fmm_tree::{near_field_offsets, BoxCoord, Separation};
use rayon::prelude::*;

/// f32 mirror of the sorted SoA particle arrays.
pub struct ParticlesF32 {
    pub x: Vec<f32>,
    pub y: Vec<f32>,
    pub z: Vec<f32>,
    pub q: Vec<f32>,
}

impl ParticlesF32 {
    /// Demote the sorted coordinate/charge arrays of `bp`.
    pub fn build(bp: &BinnedParticles) -> Self {
        let narrow = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
        ParticlesF32 {
            x: narrow(&bp.x),
            y: narrow(&bp.y),
            z: narrow(&bp.z),
            q: narrow(&bp.q),
        }
    }
}

/// Shared f64 output buffer; same disjointness contract as the f64
/// `SharedOut` in [`crate::near`].
struct SharedOut32(*mut f64);

// SAFETY: only dereferenced through `slice`, whose caller contract
// guarantees disjoint ranges across concurrently running tasks.
unsafe impl Sync for SharedOut32 {}
// SAFETY: as above — no thread-affine state.
unsafe impl Send for SharedOut32 {}

impl SharedOut32 {
    /// # Safety
    /// `range` must be in bounds and not concurrently viewed by any other
    /// task.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.0.add(range.start), range.len())
    }
}

/// Symmetric f32 potentials within one box, excluding self terms. f32
/// arithmetic; each per-term contribution is widened to f64 on the
/// scatter side, and the per-target f32 chain is bounded by the box size.
fn self_box_potential_f32(
    ps: &ParticlesF32,
    range: std::ops::Range<usize>,
    eps2: f32,
    out: &mut [f64],
) -> u64 {
    let n = range.len();
    let base = range.start;
    let mut pairs = 0u64;
    for a in 0..n {
        let ia = base + a;
        let (xa, ya, za, qa) = (ps.x[ia], ps.y[ia], ps.z[ia], ps.q[ia]);
        let mut acc = 0.0f32;
        for (b, ob) in out.iter_mut().enumerate().take(n).skip(a + 1) {
            let ib = base + b;
            let dx = xa - ps.x[ib];
            let dy = ya - ps.y[ib];
            let dz = za - ps.z[ib];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            acc += ps.q[ib] * inv_r;
            *ob += (qa * inv_r) as f64;
            pairs += 1;
        }
        out[a] += acc as f64;
    }
    pairs
}

#[inline]
fn add_stats(a: NearFieldStats, b: NearFieldStats) -> NearFieldStats {
    NearFieldStats {
        pair_interactions: a.pair_interactions + b.pair_interactions,
        box_pairs: a.box_pairs + b.box_pairs,
        flops: 0,
    }
}

/// Mixed-precision near-field potentials: the colored symmetric sweep run
/// on the f32 mirror, with every box-pair partial widened to f64 before
/// accumulation into `out`. Reports the same third-law-halved counters as
/// the f64 symmetric sweeps.
pub fn near_field_potentials_f32(
    kernel: Kernel,
    bp: &BinnedParticles,
    sep: Separation,
    schedule: &crate::near::ColorSchedule,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    assert_eq!(out.len(), bp.len());
    assert_eq!(schedule.level, bp.level);
    let ps = ParticlesF32::build(bp);
    let eps2 = (eps * eps) as f32;
    let level = bp.level;
    let side = 1u32 << level;
    let half: Vec<[i32; 3]> = near_field_offsets(sep)
        .into_iter()
        .filter(|o| *o > [0, 0, 0])
        .collect();

    let shared = SharedOut32(out.as_mut_ptr());
    let shared = &shared;
    let ps_ref = &ps;

    let process_block = |origin: &[u32; 3]| -> NearFieldStats {
        let mut st = NearFieldStats::default();
        let [ox, oy, oz] = *origin;
        for z in oz..(oz + crate::near::COLOR_BLOCK).min(side) {
            for y in oy..(oy + crate::near::COLOR_BLOCK).min(side) {
                for x in ox..(ox + crate::near::COLOR_BLOCK).min(side) {
                    let t = BoxCoord { level, x, y, z };
                    let t_range = bp.range(t.index());
                    if t_range.is_empty() {
                        continue;
                    }
                    // SAFETY: within one color phase no other block's task
                    // writes any box this task touches (the schedule's
                    // disjointness argument is precision-independent).
                    let t_out = unsafe { shared.slice(t_range.clone()) };
                    st.pair_interactions +=
                        self_box_potential_f32(ps_ref, t_range.clone(), eps2, t_out);
                    st.box_pairs += 1;
                    for &d in &half {
                        let Some(s) = t.offset(d) else { continue };
                        let s_range = bp.range(s.index());
                        if s_range.is_empty() {
                            continue;
                        }
                        // SAFETY: as above.
                        let s_out = unsafe { shared.slice(s_range.clone()) };
                        let xs = &ps_ref.x[s_range.clone()];
                        let ys = &ps_ref.y[s_range.clone()];
                        let zs = &ps_ref.z[s_range.clone()];
                        let qs = &ps_ref.q[s_range.clone()];
                        pairwise::exchange_f32_panel_with(
                            kernel,
                            &ps_ref.x[t_range.clone()],
                            &ps_ref.y[t_range.clone()],
                            &ps_ref.z[t_range.clone()],
                            &ps_ref.q[t_range.clone()],
                            eps2,
                            xs,
                            ys,
                            zs,
                            qs,
                            t_out,
                            s_out,
                        );
                        st.pair_interactions += (t_range.len() * s_range.len()) as u64;
                        st.box_pairs += 1;
                    }
                }
            }
        }
        st
    };

    let mut total = NearFieldStats::default();
    for color in &schedule.colors {
        // det: integer-counter reduction; block writes are conflict-free
        // within a color.
        let st = if parallel {
            color
                .par_iter()
                .map(process_block)
                .reduce(NearFieldStats::default, add_stats)
        } else {
            color
                .iter()
                .map(process_block)
                .fold(NearFieldStats::default(), add_stats)
        };
        total = add_stats(total, st);
    }
    total.flops = total.pair_interactions * PAIR_FLOPS;
    total
}

/// Mixed-precision near-field potentials **and** fields: target-centric
/// f32 sweep; each box's partial (self box, then each neighbour box) is
/// widened to f64 before joining the target's accumulator.
pub fn near_field_forces_f32(
    kernel: Kernel,
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    pot: &mut [f64],
    field: &mut [[f64; 3]],
) -> NearFieldStats {
    assert_eq!(pot.len(), bp.len());
    assert_eq!(field.len(), bp.len());
    let ps = ParticlesF32::build(bp);
    let eps2 = (eps * eps) as f32;
    let offsets = near_field_offsets(sep);
    let n_boxes = bp.binning.starts.len() - 1;

    // Per-box output slices (same CSR split as the f64 path).
    let mut pot_slices = Vec::with_capacity(n_boxes);
    let mut pbuf: &mut [f64] = pot;
    let mut field_slices = Vec::with_capacity(n_boxes);
    let mut fbuf: &mut [[f64; 3]] = field;
    for b in 0..n_boxes {
        let cnt = bp.binning.count(b);
        let (ph, pt) = pbuf.split_at_mut(cnt);
        pot_slices.push(ph);
        pbuf = pt;
        let (fh, ft) = fbuf.split_at_mut(cnt);
        field_slices.push(fh);
        fbuf = ft;
    }
    let ps_ref = &ps;

    let work = |(b, (po, fo)): (usize, (&mut &mut [f64], &mut &mut [[f64; 3]]))| -> u64 {
        let t = BoxCoord::from_index(bp.level, b);
        let t_range = bp.range(b);
        let mut pairs = 0u64;
        for (idx, ti) in t_range.clone().enumerate() {
            let (tx, ty, tz) = (ps_ref.x[ti], ps_ref.y[ti], ps_ref.z[ti]);
            // Self box: scalar f32 with the self-term skipped.
            let mut p_acc = 0.0f32;
            let mut f_acc = [0.0f32; 3];
            for si in t_range.clone() {
                if si == ti {
                    continue;
                }
                let dx = tx - ps_ref.x[si];
                let dy = ty - ps_ref.y[si];
                let dz = tz - ps_ref.z[si];
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let inv_r = 1.0 / r2.sqrt();
                let qr = ps_ref.q[si] * inv_r;
                p_acc += qr;
                let qr3 = qr * inv_r * inv_r;
                f_acc[0] += qr3 * dx;
                f_acc[1] += qr3 * dy;
                f_acc[2] += qr3 * dz;
            }
            pairs += (t_range.len() - 1) as u64;
            po[idx] += p_acc as f64;
            for a in 0..3 {
                fo[idx][a] += f_acc[a] as f64;
            }
            for &d in &offsets {
                if let Some(s) = t.offset(d) {
                    let s_range = bp.range(s.index());
                    if s_range.is_empty() {
                        continue;
                    }
                    pairs += s_range.len() as u64;
                    let (p, f) = pairwise::force_gather_f32_with(
                        kernel,
                        tx,
                        ty,
                        tz,
                        eps2,
                        &ps_ref.x[s_range.clone()],
                        &ps_ref.y[s_range.clone()],
                        &ps_ref.z[s_range.clone()],
                        &ps_ref.q[s_range.clone()],
                    );
                    po[idx] += p as f64;
                    for a in 0..3 {
                        fo[idx][a] += f[a] as f64;
                    }
                }
            }
        }
        pairs
    };

    // det: integer pair-count reduction; floats live in disjoint slices.
    let pairs: u64 = if parallel {
        pot_slices
            .par_iter_mut()
            .zip(field_slices.par_iter_mut())
            .enumerate()
            .map(work)
            .sum()
    } else {
        pot_slices
            .iter_mut()
            .zip(field_slices.iter_mut())
            .enumerate()
            .map(work)
            .sum()
    };
    NearFieldStats {
        pair_interactions: pairs,
        box_pairs: 0,
        flops: pairs * PAIR_FORCE_FLOPS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::near::{near_field_forces, near_field_symmetric, ColorSchedule};
    use fmm_tree::Domain;

    fn build(n: usize, level: u32, seed: u64) -> BinnedParticles {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
        let q: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
        BinnedParticles::build(&pts, &q, Domain::unit(), level)
    }

    // Accuracy assertions below use the repo's standard metric
    // (`relative_error_stats`: error normalized by the *system RMS* of the
    // reference, the paper's ε₁ convention). Mixed-sign charges are the
    // hard case for potentials (the target sums cancel while the per-term
    // f32 error doesn't); random uniform points are the hard case for max
    // error (an unsoftened close pair at distance r amplifies the f32
    // coordinate representation error ~ε₃₂·L by L/r — irreducible in any
    // f32 scheme). The RMS bounds are tight; the max bounds carry the
    // close-pair amplification. See the module docs and DESIGN.md §5.5.

    #[test]
    fn f32_potentials_track_f64_and_count_identically() {
        let bp = build(3000, 3, 53);
        let (f64_out, st64) = near_field_symmetric(&bp, Separation::Two);
        let schedule = ColorSchedule::build(3);
        for kernel in Kernel::available() {
            for parallel in [false, true] {
                let mut out = vec![0.0; bp.len()];
                let st = near_field_potentials_f32(
                    kernel,
                    &bp,
                    Separation::Two,
                    &schedule,
                    parallel,
                    0.0,
                    &mut out,
                );
                assert_eq!(st.pair_interactions, st64.pair_interactions);
                assert_eq!(st.box_pairs, st64.box_pairs);
                let stats = crate::error::relative_error_stats(&out, &f64_out);
                // Measured: rms ≈ 6.3e-7, max ≈ 1.4e-5 for every kernel.
                assert!(
                    stats.rms_rel < 3e-6 && stats.max_rel < 5e-5,
                    "{:?} par={}: rms {:.2e} max {:.2e}",
                    kernel,
                    parallel,
                    stats.rms_rel,
                    stats.max_rel
                );
            }
        }
    }

    #[test]
    fn f32_forces_track_f64() {
        let bp = build(1500, 2, 59);
        let mut pot64 = vec![0.0; bp.len()];
        let mut field64 = vec![[0.0; 3]; bp.len()];
        let st64 = near_field_forces(&bp, Separation::Two, false, &mut pot64, &mut field64);
        for kernel in Kernel::available() {
            let mut pot = vec![0.0; bp.len()];
            let mut field = vec![[0.0; 3]; bp.len()];
            let st = near_field_forces_f32(
                kernel,
                &bp,
                Separation::Two,
                true,
                0.0,
                &mut pot,
                &mut field,
            );
            assert_eq!(st.pair_interactions, st64.pair_interactions);
            let stats = crate::error::relative_error_stats(&pot, &pot64);
            // Measured: rms ≈ 8.4e-7, max ≈ 2.1e-5 for every kernel.
            assert!(
                stats.rms_rel < 3e-6 && stats.max_rel < 8e-5,
                "{:?} pot: rms {:.2e} max {:.2e}",
                kernel,
                stats.rms_rel,
                stats.max_rel
            );
            // Fields amplify the close-pair coordinate error by another
            // 1/r. Measured: rms ≈ 7.0e-6, max ≈ 2.8e-4.
            let flat: Vec<f64> = field.iter().flatten().copied().collect();
            let flat64: Vec<f64> = field64.iter().flatten().copied().collect();
            let fstats = crate::error::relative_error_stats(&flat, &flat64);
            assert!(
                fstats.rms_rel < 3e-5 && fstats.max_rel < 1e-3,
                "{:?} field: rms {:.2e} max {:.2e}",
                kernel,
                fstats.rms_rel,
                fstats.max_rel
            );
        }
    }
}
