//! Binned particle storage (SoA) aligned with leaf boxes.
//!
//! The paper's coordinate sort (§3.2) orders particles so that each leaf
//! box's particles are contiguous and live on the VU that owns the box; the
//! shared-memory analogue is an SoA copy in box-sorted order plus CSR
//! offsets, so both the leaf-level particle–box interactions and the
//! near-field direct evaluation stream contiguous memory.

use fmm_tree::{assign_boxes, bin_particles, Binning, Domain};

/// Particles sorted by leaf box, stored SoA.
#[derive(Debug, Clone)]
pub struct BinnedParticles {
    pub domain: Domain,
    pub level: u32,
    pub binning: Binning,
    /// Sorted coordinates, one Vec per axis (SoA for vectorized kernels).
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub q: Vec<f64>,
}

impl BinnedParticles {
    /// Sort particles of a cubic `domain` into leaf boxes at `level`.
    pub fn build(positions: &[[f64; 3]], charges: &[f64], domain: Domain, level: u32) -> Self {
        assert_eq!(positions.len(), charges.len());
        let ids = assign_boxes(positions, &domain, level);
        let n_boxes = 1usize << (3 * level);
        let binning = bin_particles(&ids, n_boxes);
        let n = positions.len();
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut z = Vec::with_capacity(n);
        let mut q = Vec::with_capacity(n);
        for &i in &binning.perm {
            let p = positions[i as usize];
            x.push(p[0]);
            y.push(p[1]);
            z.push(p[2]);
            q.push(charges[i as usize]);
        }
        BinnedParticles {
            domain,
            level,
            binning,
            x,
            y,
            z,
            q,
        }
    }

    /// Number of particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Sorted-order range of box `b`.
    #[inline]
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        self.binning.range(b)
    }

    /// Mean/max leaf occupancy — the load-balance numbers of §3.5.
    pub fn occupancy(&self) -> (f64, usize) {
        let n_boxes = self.binning.starts.len() - 1;
        let max = (0..n_boxes)
            .map(|b| self.binning.count(b))
            .max()
            .unwrap_or(0);
        (self.len() as f64 / n_boxes as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| [next(), next(), next()]).collect()
    }

    #[test]
    fn binned_particles_land_in_their_box() {
        let pts = pseudo_points(2000, 3);
        let q: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let bp = BinnedParticles::build(&pts, &q, Domain::unit(), 3);
        assert_eq!(bp.len(), 2000);
        for b in 0..512usize {
            for s in bp.range(b) {
                let located = bp.domain.locate([bp.x[s], bp.y[s], bp.z[s]], 3);
                assert_eq!(located.index(), b);
            }
        }
    }

    #[test]
    fn charges_follow_positions() {
        let pts = pseudo_points(100, 9);
        let q: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect();
        let bp = BinnedParticles::build(&pts, &q, Domain::unit(), 2);
        for s in 0..100 {
            let orig = bp.binning.perm[s] as usize;
            assert_eq!(bp.q[s], q[orig]);
            assert_eq!(bp.x[s], pts[orig][0]);
        }
    }

    #[test]
    fn occupancy_statistics() {
        let pts = pseudo_points(4096, 5);
        let q = vec![1.0; 4096];
        let bp = BinnedParticles::build(&pts, &q, Domain::unit(), 3);
        let (mean, max) = bp.occupancy();
        assert!((mean - 8.0).abs() < 1e-12);
        assert!(max >= 8);
    }
}
