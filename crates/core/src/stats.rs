//! Per-phase timing and flop accounting.
//!
//! The paper's evaluation is phrased in terms of *arithmetic efficiency*
//! (achieved flop rate over peak) and *cycles per particle*; it also
//! reports the communication share of the traversal. This module gives the
//! driver a per-phase profile so the benchmark harness can print the same
//! quantities.

use std::time::{Duration, Instant};

/// The five algorithm phases of §2.2 plus setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Binning / coordinate sort of the input particles.
    Sort,
    /// Leaf-level particle → outer approximation.
    P2O,
    /// Upward pass (T1).
    Upward,
    /// Downward pass, interactive field conversions (T2).
    Interactive,
    /// Downward pass, parent-to-child inner shifts (T3).
    Downward,
    /// Leaf-level inner approximation → particle evaluation.
    Eval,
    /// Near-field direct evaluation.
    Near,
}

impl Phase {
    pub const ALL: [Phase; 7] = [
        Phase::Sort,
        Phase::P2O,
        Phase::Upward,
        Phase::Interactive,
        Phase::Downward,
        Phase::Eval,
        Phase::Near,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Sort => "sort",
            Phase::P2O => "p2o",
            Phase::Upward => "upward(T1)",
            Phase::Interactive => "interactive(T2)",
            Phase::Downward => "downward(T3)",
            Phase::Eval => "eval",
            Phase::Near => "near",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::Sort => 0,
            Phase::P2O => 1,
            Phase::Upward => 2,
            Phase::Interactive => 3,
            Phase::Downward => 4,
            Phase::Eval => 5,
            Phase::Near => 6,
        }
    }
}

/// Timing and flop totals per phase for one evaluation.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    times: [Duration; 7],
    flops: [u64; 7],
}

impl Profile {
    pub fn new() -> Self {
        Profile::default()
    }

    /// Time a closure, attributing its wall time to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.times[phase.idx()] += t0.elapsed();
        r
    }

    /// Add flops to a phase.
    pub fn add_flops(&mut self, phase: Phase, flops: u64) {
        self.flops[phase.idx()] += flops;
    }

    /// Add already-measured wall time to a phase (used by backends that
    /// time phases away from the profile, e.g. inside SPMD workers).
    pub fn add_time(&mut self, phase: Phase, d: Duration) {
        self.times[phase.idx()] += d;
    }

    pub fn phase_time(&self, phase: Phase) -> Duration {
        self.times[phase.idx()]
    }

    pub fn phase_flops(&self, phase: Phase) -> u64 {
        self.flops[phase.idx()]
    }

    pub fn total_time(&self) -> Duration {
        self.times.iter().sum()
    }

    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Hierarchy-traversal time (T1 + T2 + T3) — the paper's "herarchical
    /// part".
    pub fn traversal_time(&self) -> Duration {
        self.phase_time(Phase::Upward)
            + self.phase_time(Phase::Interactive)
            + self.phase_time(Phase::Downward)
    }

    /// Achieved flop rate of a phase, in Gflop/s.
    pub fn phase_gflops(&self, phase: Phase) -> f64 {
        let t = self.phase_time(phase).as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.phase_flops(phase) as f64 / t / 1e9
        }
    }

    /// Render a fixed-width table of the profile.
    pub fn table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "{:<16} {:>10} {:>14} {:>9}",
            "phase", "time(ms)", "flops", "Gflop/s"
        )
        .unwrap();
        for p in Phase::ALL {
            writeln!(
                s,
                "{:<16} {:>10.2} {:>14} {:>9.2}",
                p.name(),
                self.phase_time(p).as_secs_f64() * 1e3,
                self.phase_flops(p),
                self.phase_gflops(p)
            )
            .unwrap();
        }
        writeln!(
            s,
            "{:<16} {:>10.2} {:>14}",
            "total",
            self.total_time().as_secs_f64() * 1e3,
            self.total_flops()
        )
        .unwrap();
        s
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for i in 0..7 {
            self.times[i] += other.times[i];
            self.flops[i] += other.flops[i];
        }
    }
}

/// Measured data motion of one SPMD program phase, summed over workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpmdPhase {
    /// Logical channel operations: CSHIFTs, router sends, and broadcast
    /// stages (the countable "calls" of the CM runtime).
    pub messages: u64,
    /// Payload bytes that crossed a worker boundary.
    pub bytes: u64,
    /// f64 words copied within workers' own memories.
    pub local_words: u64,
}

impl std::ops::AddAssign for SpmdPhase {
    fn add_assign(&mut self, o: SpmdPhase) {
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.local_words += o.local_words;
    }
}

/// The SPMD data-motion counters: per-phase message / byte / local-word
/// totals plus a cursor naming the phase charges currently land in. One
/// struct serves both sides of the transport seam — worker contexts count
/// into it while executing the `CommProgram` (the fabric itself never
/// counts, so the totals are fabric-independent and bitwise comparable
/// across backends), and [`SpmdReport`] carries the merged result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    phases: [SpmdPhase; 6],
    phase: usize,
}

impl Counters {
    /// Number of program phases, matching the machine model's budget.
    pub const PHASES: usize = 6;

    /// Direct charges to the given phase index.
    pub fn set_phase(&mut self, phase: usize) {
        debug_assert!(phase < Self::PHASES, "phase {phase} out of range");
        self.phase = phase;
    }

    /// The phase charges currently land in (0..6, budget order).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Count `n` messages against the current phase.
    pub fn add_messages(&mut self, n: u64) {
        self.phases[self.phase].messages += n;
    }

    /// Count `words` f64 payload words crossing a rank boundary (8 bytes
    /// each) against the current phase.
    pub fn add_words(&mut self, words: u64) {
        self.phases[self.phase].bytes += words * 8;
    }

    /// Count `words` f64 words moved within a rank's own memory.
    pub fn add_local_words(&mut self, words: u64) {
        self.phases[self.phase].local_words += words;
    }

    /// Fold another rank's totals into this one (cursor untouched).
    pub fn merge(&mut self, other: &Counters) {
        for (c, o) in self.phases.iter_mut().zip(&other.phases) {
            *c += *o;
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, SpmdPhase> {
        self.phases.iter()
    }

    /// The per-phase totals, in [`SpmdReport::PHASE_NAMES`] order.
    pub fn phases(&self) -> &[SpmdPhase; 6] {
        &self.phases
    }
}

impl std::ops::Index<usize> for Counters {
    type Output = SpmdPhase;
    fn index(&self, i: usize) -> &SpmdPhase {
        &self.phases[i]
    }
}

impl<'a> IntoIterator for &'a Counters {
    type Item = &'a SpmdPhase;
    type IntoIter = std::slice::Iter<'a, SpmdPhase>;
    fn into_iter(self) -> Self::IntoIter {
        self.phases.iter()
    }
}

/// Per-phase measured communication of one SPMD evaluation, attached to
/// [`crate::EvalOutput`] when the run used [`crate::Executor::Spmd`].
/// Phases are indexed like the machine model's program budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpmdReport {
    /// Worker (VU) count.
    pub workers: usize,
    /// The VU grid the workers were arranged on.
    pub vu_dims: [usize; 3],
    /// Measured motion per phase, in [`SpmdReport::PHASE_NAMES`] order,
    /// merged over all ranks.
    pub phases: Counters,
    /// Per-worker busy wall-clock (sum of its six phase timings), in
    /// nanoseconds. The spread across workers is the load-balance signal.
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker arithmetic flops (P2O + traversal + eval + near field).
    /// Deterministic for a fixed input, unlike wall-clock.
    pub worker_flops: Vec<u64>,
    /// Leaf Morton-curve cut points when the run used
    /// `Balance::CostWeighted` (`None` for the uniform block layout).
    pub partition: Option<Vec<u64>>,
}

impl SpmdReport {
    /// Phase names, matching `fmm_machine::communication_budget`.
    pub const PHASE_NAMES: [&'static str; 6] = [
        "sort",
        "p2o",
        "upward(T1)",
        "downward(T2+T3)",
        "eval",
        "near",
    ];

    /// Max-over-mean imbalance of a per-worker measure: 0.0 means every
    /// worker carried exactly the mean, 1.0 means the slowest carried
    /// twice it. Returns 0.0 when the measure is empty or all-zero.
    pub fn imbalance_of(values: &[u64]) -> f64 {
        let total: u64 = values.iter().sum();
        if values.is_empty() || total == 0 {
            return 0.0;
        }
        let mean = total as f64 / values.len() as f64;
        let max = *values.iter().max().unwrap() as f64;
        max / mean - 1.0
    }

    /// Busy-time imbalance across workers (max/mean − 1).
    pub fn busy_imbalance(&self) -> f64 {
        Self::imbalance_of(&self.worker_busy_ns)
    }

    /// Flop imbalance across workers (max/mean − 1); deterministic.
    pub fn flop_imbalance(&self) -> f64 {
        Self::imbalance_of(&self.worker_flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_attributes_to_phase() {
        let mut p = Profile::new();
        let v = p.time(Phase::Near, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(p.phase_time(Phase::Near) >= Duration::from_millis(4));
        assert_eq!(p.phase_time(Phase::P2O), Duration::ZERO);
    }

    #[test]
    fn flop_accounting() {
        let mut p = Profile::new();
        p.add_flops(Phase::Interactive, 1000);
        p.add_flops(Phase::Interactive, 500);
        p.add_flops(Phase::Near, 250);
        assert_eq!(p.phase_flops(Phase::Interactive), 1500);
        assert_eq!(p.total_flops(), 1750);
    }

    #[test]
    fn merge_sums() {
        let mut a = Profile::new();
        a.add_flops(Phase::Eval, 10);
        let mut b = Profile::new();
        b.add_flops(Phase::Eval, 20);
        a.merge(&b);
        assert_eq!(a.phase_flops(Phase::Eval), 30);
    }

    #[test]
    fn counters_charge_the_current_phase() {
        let mut c = Counters::default();
        c.add_messages(2);
        c.set_phase(3);
        c.add_messages(1);
        c.add_words(10);
        c.add_local_words(4);
        assert_eq!(c[0].messages, 2);
        assert_eq!(c[3].messages, 1);
        assert_eq!(c[3].bytes, 80);
        assert_eq!(c[3].local_words, 4);
        let mut total = Counters::default();
        total.merge(&c);
        total.merge(&c);
        assert_eq!(total[3].bytes, 160);
        assert_eq!(total.phase(), 0, "merge never moves the cursor");
        assert_eq!(total.iter().map(|p| p.messages).sum::<u64>(), 6);
    }

    #[test]
    fn table_renders_all_phases() {
        let p = Profile::new();
        let t = p.table();
        for ph in Phase::ALL {
            assert!(t.contains(ph.name()), "missing {}", ph.name());
        }
    }
}
