//! Translation operators T1, T2, T3 as K×K matrices.
//!
//! In Anderson's method a translation is just "evaluate the source sphere's
//! approximation at the destination sphere's integration points" (paper
//! Fig. 2), which is linear in the source samples — a K×K matrix whose
//! entries depend only on the *relative geometry* of the two spheres. The
//! same matrices therefore serve every level (geometry is scale-invariant:
//! sphere radii are fixed ratios of box sides) and every box pair with the
//! same relative position, which is what makes the aggregation into
//! level-3 BLAS possible.
//!
//! Matrices are stored **transposed**: the traversal applies them to panels
//! of potential vectors laid out one-vector-per-row (`n_boxes × K`), so the
//! update is `OUT (n×K) += IN (n×K) · Tᵗ (K×K)` — a single GEMM with unit
//! stride everywhere.

use fmm_linalg::Matrix;
use fmm_sphere::{inner_kernel_row, outer_kernel_row, SphereRule};
use fmm_tree::{interactive_field_union, supernode_decomposition, Separation};
use std::collections::HashMap;

/// Offsets of the eight child centres relative to their parent's centre,
/// in child-side units, indexed by octant.
#[inline]
pub fn child_center_offset(octant: usize) -> [f64; 3] {
    [
        (octant & 1) as f64 - 0.5,
        ((octant >> 1) & 1) as f64 - 0.5,
        ((octant >> 2) & 1) as f64 - 0.5,
    ]
}

/// The translation-matrix side of an FMM instance: all T1/T3 matrices, the
/// full cube of T2 matrices, and (optionally) the supernode T2 matrices.
#[derive(Debug, Clone)]
pub struct TranslationSet {
    pub k: usize,
    /// Separation the T2 cube was built for.
    pub separation: Separation,
    /// `t1t[oct]`: child-outer → parent-outer (transposed).
    pub t1t: Vec<Matrix>,
    /// `t3t[oct]`: parent-inner → child-inner (transposed).
    pub t3t: Vec<Matrix>,
    /// T2 matrices (transposed) in a dense (4d+3)³ cube indexed by
    /// [`TranslationSet::t2_index_for`]; `None` for near-field offsets (the
    /// paper allocates the full 11³ = 1331 cube "for ease of indexing" and
    /// fills the 1206 interactive offsets).
    pub t2t: Vec<Option<Matrix>>,
    /// Supernode T2 matrices keyed by the doubled parent-centre offset.
    // det: matrices are fetched by offset key only, never iterated.
    pub t2t_super: HashMap<[i32; 3], Matrix>,
}

/// Floating point work to build one K×K translation matrix with truncation
/// M: each entry is an M-term Legendre series plus a dot product, ~6 flops
/// per term. Used by the precomputation-vs-replication experiments
/// (paper Figs. 8–9).
pub const fn matrix_build_flops(k: usize, m: usize) -> u64 {
    (k as u64) * (k as u64) * (6 * (m as u64 + 1) + 10)
}

impl TranslationSet {
    /// Build all matrices for a rule, truncation, sphere radii (in units of
    /// the box side at the *child* level) and separation.
    ///
    /// `with_supernodes` additionally builds the parent-level source
    /// matrices of the supernode decomposition.
    pub fn build(
        rule: &SphereRule,
        m: usize,
        outer_ratio: f64,
        inner_ratio: f64,
        separation: Separation,
        with_supernodes: bool,
    ) -> Self {
        let k = rule.len();
        let a_child = outer_ratio;
        let a_parent = 2.0 * outer_ratio;
        let b_child = inner_ratio;
        let b_parent = 2.0 * inner_ratio;

        // T1: parent sample j is the child's outer approximation evaluated
        // at the parent integration point (2ρ s_j, relative to the parent
        // centre), i.e. at 2ρ s_j − c_oct relative to the child centre.
        let mut t1t = Vec::with_capacity(8);
        let mut t3t = Vec::with_capacity(8);
        let mut row = vec![0.0; k];
        for oct in 0..8 {
            let c = child_center_offset(oct);
            let mut m1 = Matrix::zeros(k, k);
            let mut m3 = Matrix::zeros(k, k);
            for j in 0..k {
                let s = rule.points[j];
                let x1 = [
                    a_parent * s[0] - c[0],
                    a_parent * s[1] - c[1],
                    a_parent * s[2] - c[2],
                ];
                outer_kernel_row(rule, m, a_child, x1, &mut row);
                for i in 0..k {
                    m1[(i, j)] = row[i]; // transposed store
                }
                // T3: child sample j is the parent's inner approximation
                // evaluated at c_oct + b_child s_j relative to the parent
                // centre.
                let x3 = [
                    c[0] + b_child * s[0],
                    c[1] + b_child * s[1],
                    c[2] + b_child * s[2],
                ];
                inner_kernel_row(rule, m, b_parent, x3, &mut row);
                for i in 0..k {
                    m3[(i, j)] = row[i];
                }
            }
            t1t.push(m1);
            t3t.push(m3);
        }

        // T2 cube: target sample j is the source box's outer approximation
        // evaluated at b_child s_j − o relative to the source centre, where
        // o is the source-centre offset (source − target) in box units.
        let d = separation.d();
        let w = (4 * d + 3) as usize;
        let mut t2t: Vec<Option<Matrix>> = vec![None; w * w * w];
        for o in interactive_field_union(separation) {
            let mut mt = Matrix::zeros(k, k);
            for j in 0..k {
                let s = rule.points[j];
                let x = [
                    b_child * s[0] - o[0] as f64,
                    b_child * s[1] - o[1] as f64,
                    b_child * s[2] - o[2] as f64,
                ];
                outer_kernel_row(rule, m, a_child, x, &mut row);
                for i in 0..k {
                    mt[(i, j)] = row[i];
                }
            }
            t2t[Self::t2_index_for(separation, o)] = Some(mt);
        }

        // Supernode matrices: parent-level sources (outer radius 2ρ) at the
        // doubled centre offsets produced by the decomposition. The key
        // set is shared across octants, so collect the union.
        // det: keyed lookups only (see the field's justification).
        let mut t2t_super = HashMap::new();
        if with_supernodes {
            for oct in 0..8 {
                let o = [oct & 1, (oct >> 1) & 1, (oct >> 2) & 1];
                for p in supernode_decomposition(o, separation).parents {
                    t2t_super.entry(p.center_offset_half).or_insert_with(|| {
                        let mut mt = Matrix::zeros(k, k);
                        for j in 0..k {
                            let s = rule.points[j];
                            let x = [
                                b_child * s[0] - p.center_offset_half[0] as f64 / 2.0,
                                b_child * s[1] - p.center_offset_half[1] as f64 / 2.0,
                                b_child * s[2] - p.center_offset_half[2] as f64 / 2.0,
                            ];
                            outer_kernel_row(rule, m, a_parent, x, &mut row);
                            for i in 0..k {
                                mt[(i, j)] = row[i];
                            }
                        }
                        mt
                    });
                }
            }
        }

        TranslationSet {
            k,
            separation,
            t1t,
            t3t,
            t2t,
            t2t_super,
        }
    }

    /// Dense-cube index of a T2 offset.
    #[inline]
    pub fn t2_index_for(separation: Separation, o: [i32; 3]) -> usize {
        let d = separation.d();
        let r = 2 * d + 1; // offsets span [−r, r]
        let w = (2 * r + 1) as usize;
        debug_assert!(o.iter().all(|v| v.abs() <= r));
        (((o[2] + r) as usize * w) + (o[1] + r) as usize) * w + (o[0] + r) as usize
    }

    /// T2 matrix (transposed) for an offset; `None` inside the near field.
    #[inline]
    pub fn t2(&self, o: [i32; 3]) -> Option<&Matrix> {
        self.t2t[Self::t2_index_for(self.separation, o)].as_ref()
    }

    /// Number of distinct T2 matrices stored.
    pub fn t2_count(&self) -> usize {
        self.t2t.iter().filter(|m| m.is_some()).count()
    }

    /// Memory footprint of all stored matrices in bytes (the paper tracks
    /// this: 1331 double-precision K×K matrices are 1.53 MB at K = 12 and
    /// 53.9 MB at K = 72).
    pub fn memory_bytes(&self) -> usize {
        let per = self.k * self.k * std::mem::size_of::<f64>();
        (self.t1t.len() + self.t3t.len() + self.t2_count() + self.t2t_super.len()) * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_sphere::{InnerApprox, OuterApprox};

    fn apply_t(mt: &Matrix, g: &[f64]) -> Vec<f64> {
        // OUT = IN · Tᵗ for a single row-vector.
        let k = g.len();
        let mut out = vec![0.0; k];
        for j in 0..k {
            let mut acc = 0.0;
            for i in 0..k {
                acc += g[i] * mt[(i, j)];
            }
            out[j] = acc;
        }
        out
    }

    fn rule5() -> SphereRule {
        SphereRule::for_order(5)
    }

    /// High-order rule for tight identity checks (test-only; building a
    /// full TranslationSet at K = 66 would be slow in debug builds, so the
    /// identity tests construct single matrices directly).
    fn rule10() -> SphereRule {
        SphereRule::product(10)
    }

    /// Build one translation matrix (transposed) from a kernel-row closure.
    fn single_matrix(rule: &SphereRule, mut row_for: impl FnMut(usize, &mut [f64])) -> Matrix {
        let k = rule.len();
        let mut mt = Matrix::zeros(k, k);
        let mut row = vec![0.0; k];
        for j in 0..k {
            row_for(j, &mut row);
            for i in 0..k {
                mt[(i, j)] = row[i];
            }
        }
        mt
    }

    #[test]
    fn t2_cube_has_1206_matrices() {
        let ts = TranslationSet::build(&rule5(), 3, 1.0, 1.0, Separation::Two, false);
        assert_eq!(ts.t2_count(), 1206);
        assert_eq!(ts.t2t.len(), 11 * 11 * 11);
        assert!(ts.t2([0, 0, 0]).is_none());
        assert!(ts.t2([2, -1, 0]).is_none());
        assert!(ts.t2([3, 0, 0]).is_some());
        assert!(ts.t2([-5, 4, 2]).is_some());
    }

    #[test]
    fn supernode_matrix_count_is_bounded_by_offsets() {
        let ts = TranslationSet::build(&rule5(), 3, 1.0, 1.0, Separation::Two, true);
        assert!(!ts.t2t_super.is_empty());
        // Keys are odd triples (4P − 2o + 1).
        for key in ts.t2t_super.keys() {
            for v in key {
                assert!(v % 2 != 0, "doubled centre offset must be odd: {:?}", key);
            }
        }
    }

    #[test]
    fn t1_combines_children_into_parent() {
        // Particles in one child box; T1 applied to the child's outer
        // samples must reproduce the parent's directly-built outer samples.
        let rule = rule10();
        let m = 6;
        let rho = 1.6;
        // Child box side 1, octant 5 = (1,0,1): centre offset (0.5,-0.5,0.5).
        let oct = 5;
        let cc = child_center_offset(oct);
        let t1t = single_matrix(&rule, |j, row| {
            let s = rule.points[j];
            let x = [
                2.0 * rho * s[0] - cc[0],
                2.0 * rho * s[1] - cc[1],
                2.0 * rho * s[2] - cc[2],
            ];
            outer_kernel_row(&rule, m, rho, x, row);
        });
        let pos = vec![
            [cc[0] + 0.2, cc[1] - 0.3, cc[2] + 0.1],
            [cc[0] - 0.4, cc[1] + 0.1, cc[2] - 0.2],
        ];
        let q = vec![1.0, -0.5];
        let child = OuterApprox::from_particles(&rule, cc, rho, &pos, &q);
        let parent_direct = OuterApprox::from_particles(&rule, [0.0; 3], 2.0 * rho, &pos, &q);
        let parent_via_t1 = apply_t(&t1t, &child.g);
        for (a, b) in parent_via_t1.iter().zip(&parent_direct.g) {
            assert!(
                (a - b).abs() < 1e-4 * b.abs().max(1.0),
                "T1 sample mismatch: {} vs {}",
                a,
                b
            );
        }
    }

    #[test]
    fn t2_converts_outer_to_inner() {
        let rule = rule10();
        let m = 6;
        let (rho, b_in) = (1.6, 1.0);
        let o = [4.0, -3.0, 2.0]; // source centre − target centre, box units
        let t2t = single_matrix(&rule, |j, row| {
            let s = rule.points[j];
            let x = [b_in * s[0] - o[0], b_in * s[1] - o[1], b_in * s[2] - o[2]];
            outer_kernel_row(&rule, m, rho, x, row);
        });
        let src_center = o;
        let pos = vec![
            [src_center[0] + 0.3, src_center[1], src_center[2] - 0.2],
            [src_center[0] - 0.1, src_center[1] + 0.4, src_center[2]],
        ];
        let q = vec![2.0, 1.0];
        let src_outer = OuterApprox::from_particles(&rule, src_center, rho, &pos, &q);
        let inner_direct = InnerApprox::from_particles(&rule, [0.0; 3], b_in, &pos, &q);
        let inner_via_t2 = apply_t(&t2t, &src_outer.g);
        for (a, b) in inner_via_t2.iter().zip(&inner_direct.g) {
            assert!(
                (a - b).abs() < 1e-4 * b.abs().max(0.2),
                "T2 sample mismatch: {} vs {}",
                a,
                b
            );
        }
    }

    #[test]
    fn t3_pushes_parent_inner_to_child() {
        let rule = rule10();
        let m = 6;
        let b_in = 1.0;
        // Far sources; parent inner at origin with radius 2b (parent side
        // 2); child at octant 2 = (0,1,0): centre (−0.5, 0.5, −0.5).
        let oct = 2;
        let cc = child_center_offset(oct);
        let t3t = single_matrix(&rule, |j, row| {
            let s = rule.points[j];
            let x = [
                cc[0] + b_in * s[0],
                cc[1] + b_in * s[1],
                cc[2] + b_in * s[2],
            ];
            inner_kernel_row(&rule, m, 2.0 * b_in, x, row);
        });
        let pos = vec![[9.0, 2.0, -4.0], [-8.0, 6.0, 5.0]];
        let q = vec![1.0, 3.0];
        let parent_inner = InnerApprox::from_particles(&rule, [0.0; 3], 2.0 * b_in, &pos, &q);
        let child_direct = InnerApprox::from_particles(&rule, cc, b_in, &pos, &q);
        let child_via_t3 = apply_t(&t3t, &parent_inner.g);
        for (a, b) in child_via_t3.iter().zip(&child_direct.g) {
            assert!(
                (a - b).abs() < 1e-4 * b.abs().max(0.2),
                "T3 sample mismatch: {} vs {}",
                a,
                b
            );
        }
    }

    #[test]
    fn t1_matrices_are_permutations_of_each_other() {
        // The paper: "due to the symmetry of the distribution of the
        // integration points on the spheres, the eight matrices required to
        // represent T1 (T3) are permutations of each other". True for the
        // icosahedral rule (antipodally symmetric point set).
        let ts = TranslationSet::build(&rule5(), 5, 1.0, 1.0, Separation::Two, false);
        for oct in 1..8 {
            let p = fmm_linalg::perm::find_row_permutation(&ts.t1t[0], &ts.t1t[oct], 1e-9);
            assert!(p.is_some(), "t1t[0] and t1t[{}] not row-permutable", oct);
        }
    }

    #[test]
    fn memory_accounting_matches_paper_scale() {
        // K = 12: 1331 matrices ≈ 1.53 MB (paper §3.3.4). We store 1206 +
        // 16 parent/child matrices, so slightly less.
        let ts = TranslationSet::build(&rule5(), 3, 1.0, 1.0, Separation::Two, false);
        let mb = ts.memory_bytes() as f64 / 1e6;
        assert!(mb > 1.3 && mb < 1.6, "memory {} MB", mb);
    }

    #[test]
    fn matrix_build_flops_monotone() {
        assert!(matrix_build_flops(72, 10) > matrix_build_flops(12, 10));
        assert!(matrix_build_flops(12, 20) > matrix_build_flops(12, 5));
    }
}
