//! Flattened per-level potential storage.
//!
//! The paper embeds the whole hierarchy of far-field potentials in two
//! layers of a 4-D array (Fig. 3) so that herarchical operations become
//! array operations on flattened data. The shared-memory analogue: one
//! contiguous `8^l × K` row-major buffer per level (one K-vector per box,
//! boxes in row-major order), which is exactly the panel layout the
//! aggregated GEMMs consume.

use fmm_tree::Hierarchy;

/// Far-field (outer) and local-field (inner) sample buffers for every
/// level of the hierarchy.
#[derive(Debug, Clone)]
pub struct FieldHierarchy {
    pub k: usize,
    pub hierarchy: Hierarchy,
    /// `far[l]` has length `8^l * k`; box b's samples at `b*k..(b+1)*k`.
    pub far: Vec<Vec<f64>>,
    /// Same layout for the inner (local-field) samples.
    pub local: Vec<Vec<f64>>,
}

impl FieldHierarchy {
    pub fn new(hierarchy: Hierarchy, k: usize) -> Self {
        let far = (0..=hierarchy.depth)
            .map(|l| vec![0.0; hierarchy.boxes_at_level(l) * k])
            .collect();
        let local = (0..=hierarchy.depth)
            .map(|l| vec![0.0; hierarchy.boxes_at_level(l) * k])
            .collect();
        FieldHierarchy {
            k,
            hierarchy,
            far,
            local,
        }
    }

    /// Far-field samples of box `b` (row-major index) at level `l`.
    #[inline]
    pub fn far_of(&self, l: u32, b: usize) -> &[f64] {
        &self.far[l as usize][b * self.k..(b + 1) * self.k]
    }

    /// Local-field samples of box `b` at level `l`.
    #[inline]
    pub fn local_of(&self, l: u32, b: usize) -> &[f64] {
        &self.local[l as usize][b * self.k..(b + 1) * self.k]
    }

    /// Total stored f64s (memory-efficiency accounting; the paper stores
    /// far-field potentials for all levels, local fields per level in
    /// flight).
    pub fn len(&self) -> usize {
        self.far.iter().map(Vec::len).sum::<usize>()
            + self.local.iter().map(Vec::len).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero all buffers (for reuse across evaluations).
    pub fn clear(&mut self) {
        for v in self.far.iter_mut().chain(self.local.iter_mut()) {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_levels() {
        let f = FieldHierarchy::new(Hierarchy::new(3), 12);
        assert_eq!(f.far[0].len(), 12);
        assert_eq!(f.far[3].len(), 512 * 12);
        assert_eq!(f.local[2].len(), 64 * 12);
        // total = 2 · K · (1 + 8 + 64 + 512)
        assert_eq!(f.len(), 2 * 12 * 585);
    }

    #[test]
    fn slices_are_disjoint_per_box() {
        let mut f = FieldHierarchy::new(Hierarchy::new(2), 4);
        f.far[2][5 * 4 + 2] = 7.0;
        assert_eq!(f.far_of(2, 5), &[0.0, 0.0, 7.0, 0.0]);
        assert_eq!(f.far_of(2, 4), &[0.0; 4]);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut f = FieldHierarchy::new(Hierarchy::new(2), 3);
        f.far[1][0] = 1.0;
        f.local[2][10] = 2.0;
        f.clear();
        assert!(f.far.iter().flatten().all(|&x| x == 0.0));
        assert!(f.local.iter().flatten().all(|&x| x == 0.0));
    }
}
