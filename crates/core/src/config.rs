//! Configuration of the method: integration order, truncation, sphere
//! radii, hierarchy depth, separation, supernodes.

use fmm_linalg::Kernel;
use fmm_sphere::SphereRule;
use fmm_tree::Separation;

/// How the hierarchy depth is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DepthPolicy {
    /// Fixed depth h (leaf level has 8^h boxes).
    Fixed(u32),
    /// Choose h so the mean number of particles per leaf box is closest to
    /// the target — the paper's "optimal hierarchy depth" balancing the
    /// hierarchy traversal against the near-field direct evaluation
    /// (§2.3). The optimum target grows with K (traversal cost ∝ K²).
    Auto {
        /// Desired mean particles per leaf box.
        particles_per_leaf: f64,
    },
}

impl DepthPolicy {
    /// Resolve the policy for `n` particles. Depth is clamped to [2, 10]
    /// (levels below 2 have no interactive field; 10 is an index-width
    /// guard far beyond single-host memory).
    pub fn resolve(&self, n: usize) -> u32 {
        match *self {
            DepthPolicy::Fixed(h) => h.clamp(2, 10),
            DepthPolicy::Auto { particles_per_leaf } => {
                let target = particles_per_leaf.max(1.0);
                let mut best = 2u32;
                let mut best_cost = f64::INFINITY;
                for h in 2..=10u32 {
                    let leaves = (1u64 << (3 * h)) as f64;
                    let per_leaf = n as f64 / leaves;
                    // log-distance to the target occupancy
                    let cost = (per_leaf / target).ln().abs();
                    if cost < best_cost {
                        best_cost = cost;
                        best = h;
                    }
                }
                best
            }
        }
    }
}

/// Which wire carries SPMD messages between ranks.
///
/// All fabrics execute the *same* `CommProgram` and are bitwise
/// interchangeable: the fabric decides how f64 payloads travel (moved
/// `Vec`s over in-process channels, or length-prefixed `FMMW` frames over
/// sockets), never what arrives. Addresses are not part of the selection —
/// socket fabrics derive them from the environment or allocate ephemeral
/// endpoints — so the enum stays `Copy` and can live inside plan keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fabric {
    /// In-process `mpsc` channels between worker threads (the default;
    /// zero serialization, payloads move by ownership transfer).
    #[default]
    InProcess,
    /// UNIX-domain stream sockets carrying `FMMW` frames.
    Unix,
    /// TCP loopback sockets carrying `FMMW` frames.
    Tcp,
}

impl Fabric {
    pub const ALL: [Fabric; 3] = [Fabric::InProcess, Fabric::Unix, Fabric::Tcp];

    pub fn name(self) -> &'static str {
        match self {
            Fabric::InProcess => "inprocess",
            Fabric::Unix => "unix",
            Fabric::Tcp => "tcp",
        }
    }

    /// Parse a fabric name as used by the `--fabric` CLI knobs; the
    /// socket fabrics also accept an `addr`-qualified spelling
    /// (`unix:/path`, `tcp:host:port`) whose address part is ignored here.
    pub fn from_name(s: &str) -> Option<Fabric> {
        let kind = s.split(':').next().unwrap_or(s);
        match kind {
            "inprocess" | "channels" | "mpsc" => Some(Fabric::InProcess),
            "unix" => Some(Fabric::Unix),
            "tcp" => Some(Fabric::Tcp),
            _ => None,
        }
    }
}

/// Options of the message-passing SPMD executor: how many ranks, which
/// fabric carries their messages, and an optional per-run load-balance
/// override. `Copy + Hash` so [`Executor`] stays embeddable in plan keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpmdOptions {
    /// Worker (rank) count; must be a power of two.
    pub workers: usize,
    /// The wire between ranks. Outputs are bitwise identical across all
    /// fabrics; this knob trades ownership-transfer channels against real
    /// socket framing (and, via `fmm_spmd::distributed`, OS processes).
    pub transport: Fabric,
    /// Load-balance override for this executor; `None` defers to
    /// [`FmmConfig::balance`].
    pub balance_hint: Option<Balance>,
}

impl SpmdOptions {
    /// `workers` ranks over the default in-process fabric.
    pub fn new(workers: usize) -> Self {
        SpmdOptions {
            workers,
            transport: Fabric::InProcess,
            balance_hint: None,
        }
    }

    /// Builder-style: select the message fabric.
    pub fn transport(mut self, f: Fabric) -> Self {
        self.transport = f;
        self
    }

    /// Builder-style: override the load-balance policy for this executor.
    pub fn balance_hint(mut self, b: Balance) -> Self {
        self.balance_hint = Some(b);
        self
    }
}

impl From<usize> for SpmdOptions {
    fn from(workers: usize) -> Self {
        SpmdOptions::new(workers)
    }
}

/// Which execution backend carries the five phases.
///
/// All backends are bitwise interchangeable for fixed inputs: `Serial`
/// and `Rayon` share one code path whose parallel loops are
/// write-disjoint, and `Spmd` (provided by the `fmm-spmd` crate) runs
/// the same arithmetic per worker over an explicit message fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Executor {
    /// Single-threaded reference execution.
    Serial,
    /// Shared-memory parallelism over rayon iterators (the default).
    Rayon,
    /// Message-passing SPMD execution: worker ranks acting as VUs over a
    /// pluggable [`Fabric`]. Use [`Executor::spmd`] for the common case.
    Spmd(SpmdOptions),
}

impl Executor {
    /// Back-compat constructor: `p` SPMD ranks over the default
    /// in-process fabric (the former `Executor::Spmd(p)`).
    pub fn spmd(workers: usize) -> Executor {
        Executor::Spmd(SpmdOptions::new(workers))
    }
}

/// Arithmetic precision tier for `evaluate()`.
///
/// The hierarchy traversal (translations, outer/inner expansions) always
/// runs in f64 — its conditioning is what buys the method's tunable
/// accuracy. The near field, which is arithmetic-bound direct summation,
/// can optionally run in f32 with SIMD rsqrt kernels at roughly twice the
/// lane throughput. See DESIGN.md §5.5 ("Kernel tiers and precision
/// modes") for the error-bound derivation: on the standard 40k-particle
/// depth-4 configuration the f32 near field stays within 1e-5 maximum
/// relative error of the f64 near field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Everything in f64 (the default).
    #[default]
    F64,
    /// f64 traversal + f32 SIMD near field (8 lanes on AVX2, 16 on
    /// AVX-512, 4 on NEON).
    Mixed,
}

/// How the SPMD executor assigns boxes to workers.
///
/// Both modes are bitwise interchangeable — the partition moves *where*
/// each box's arithmetic runs, never what it computes — so this is purely
/// a load-balance knob for clustered inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Balance {
    /// The paper's uniform layout: every worker owns the same number of
    /// boxes (block subgrids on the VU grid). Optimal for near-uniform
    /// particle distributions, collapses on clustered ones.
    #[default]
    Uniform,
    /// Weight each leaf box with an a-priori cost model (near-field pair
    /// counts from the interaction lists plus per-level translation flops)
    /// and split the Morton curve by cumulative cost, so every worker
    /// carries the same modelled work. See DESIGN.md §8.
    CostWeighted,
}

/// Full configuration of Anderson's method.
///
/// The defaults for sphere radii and truncation per integration order are
/// the outcome of the Table-2 calibration experiment (E1 in DESIGN.md):
/// the paper's own Table 2 lists radii per D, but those digits did not
/// survive OCR, so we re-derive them by sweeping (see
/// `fmm-bench/src/bin/exp_table2.rs`).
#[derive(Debug, Clone)]
pub struct FmmConfig {
    /// Integration order D: the sphere rule must integrate degree-D
    /// spherical polynomials exactly. Controls the error decay rate.
    pub order: usize,
    /// Legendre truncation M in the Poisson-formula kernels.
    pub m_trunc: usize,
    /// Outer sphere radius in units of the box side. Must exceed the
    /// circumscribed-sphere ratio √3/2 so that box sources lie inside the
    /// sphere.
    pub outer_ratio: f64,
    /// Inner sphere radius in units of the box side.
    pub inner_ratio: f64,
    /// Near-field separation (the paper assumes two-separation).
    pub separation: Separation,
    /// Use the supernode decomposition in the downward pass (875 → 189
    /// translations per box).
    pub supernodes: bool,
    /// Hierarchy depth policy.
    pub depth: DepthPolicy,
    /// Run the traversal and near field with rayon parallelism. Kept for
    /// builder compatibility; see [`FmmConfig::effective_executor`].
    pub parallel: bool,
    /// Execution backend. [`Executor::Rayon`] defers to `parallel` so the
    /// older `sequential()` builder keeps meaning `Executor::Serial`.
    pub executor: Executor,
    /// Plummer softening ε applied to the near-field pairwise kernel
    /// (q/√(r²+ε²)); 0 disables it. Keep ε well below the leaf box side:
    /// the far-field approximations are not softened, which is exact in
    /// the ε → 0 limit and perturbs far interactions only by O(ε²/r²).
    pub softening: f64,
    /// Arithmetic precision tier (f64 everywhere, or f32 near field).
    pub precision: Precision,
    /// Force a specific microkernel family instead of
    /// [`Kernel::detect`]-ing the widest supported one. Rejected by
    /// [`FmmConfig::validate`] if the host cannot run it. The resolved
    /// choice is recorded on the cached [`crate::TraversalPlan`], so every
    /// backend (including SPMD workers) runs the same kernel.
    pub kernel: Option<Kernel>,
    /// Fuse the P2O→leaf-T1 upward and leaf-T3→inner-evaluate downward
    /// sweeps so leaf multipole panels stay cache-resident (bitwise
    /// identical to the unfused phases; on by default).
    pub fused: bool,
    /// SPMD load-balance policy (ignored by the shared-memory backends,
    /// whose work stealing makes the layout irrelevant).
    pub balance: Balance,
}

impl FmmConfig {
    /// Recommended configuration for integration order `d` (radii/truncation
    /// from the E1 calibration).
    pub fn order(d: usize) -> Self {
        // Calibrated by the Table-2 sweep (fmm-bench exp_table2 /
        // calibrate): truncating at M = ⌊D/2⌋ + 1 is essential — Legendre
        // terms beyond the quadrature's faithful band inject aliasing noise
        // amplified by (2n+1), so *more* terms make the answer worse. A
        // generous outer radius shrinks the source-to-sphere ratio (the
        // (p/a)^(D+1) aliasing floor) while keeping the T2 evaluation ratio
        // a/r < 1 at two-separation distances; a tight inner radius keeps
        // evaluation points far from interactive sources. These defaults
        // reproduce the paper's headline accuracies: ~4 digits at D = 5 and
        // ~7.9 digits at D = 14 on uniform unit-charge systems.
        let m_trunc = d / 2 + 1;
        FmmConfig {
            order: d,
            m_trunc,
            outer_ratio: 1.6,
            inner_ratio: 1.0,
            separation: Separation::Two,
            supernodes: false,
            depth: DepthPolicy::Auto {
                // Calibrated by the E10 depth sweep: for D = 5 (K = 12)
                // the near-field/traversal crossover sits near ~8
                // particles per leaf on this class of host.
                particles_per_leaf: 8.0,
            },
            parallel: true,
            executor: Executor::Rayon,
            softening: 0.0,
            precision: Precision::F64,
            kernel: None,
            fused: true,
            balance: Balance::Uniform,
        }
    }

    /// Builder-style: execution backend.
    pub fn executor(mut self, e: Executor) -> Self {
        self.executor = e;
        self
    }

    /// The backend that will actually run, after folding in the legacy
    /// `parallel` flag: `Rayon` with `parallel == false` means `Serial`.
    pub fn effective_executor(&self) -> Executor {
        match self.executor {
            Executor::Rayon if !self.parallel => Executor::Serial,
            e => e,
        }
    }

    /// The SPMD load-balance policy that will actually run: the
    /// executor's [`SpmdOptions::balance_hint`] when set, else the
    /// config-level [`FmmConfig::balance`].
    pub fn effective_balance(&self) -> Balance {
        match self.effective_executor() {
            Executor::Spmd(opts) => opts.balance_hint.unwrap_or(self.balance),
            _ => self.balance,
        }
    }

    /// Builder-style: fixed depth.
    pub fn depth(mut self, h: u32) -> Self {
        self.depth = DepthPolicy::Fixed(h);
        self
    }

    /// Builder-style: auto depth with a target leaf occupancy.
    pub fn auto_depth(mut self, particles_per_leaf: f64) -> Self {
        self.depth = DepthPolicy::Auto { particles_per_leaf };
        self
    }

    /// Builder-style: truncation M.
    pub fn truncation(mut self, m: usize) -> Self {
        self.m_trunc = m;
        self
    }

    /// Builder-style: sphere radii (units of box side).
    pub fn radii(mut self, outer: f64, inner: f64) -> Self {
        self.outer_ratio = outer;
        self.inner_ratio = inner;
        self
    }

    /// Builder-style: near-field separation.
    pub fn separation(mut self, s: Separation) -> Self {
        self.separation = s;
        self
    }

    /// Builder-style: enable/disable supernodes.
    pub fn supernodes(mut self, on: bool) -> Self {
        self.supernodes = on;
        self
    }

    /// Builder-style: sequential execution (useful for deterministic tests
    /// and the machine-simulator comparison).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Builder-style: Plummer softening ε for the near-field kernel.
    pub fn softening(mut self, eps: f64) -> Self {
        self.softening = eps;
        self
    }

    /// Builder-style: precision tier.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Builder-style: force a specific microkernel family.
    pub fn kernel(mut self, k: Kernel) -> Self {
        self.kernel = Some(k);
        self
    }

    /// Builder-style: enable/disable the fused level sweeps.
    pub fn fused(mut self, on: bool) -> Self {
        self.fused = on;
        self
    }

    /// Builder-style: SPMD load-balance policy.
    pub fn balance(mut self, b: Balance) -> Self {
        self.balance = b;
        self
    }

    /// The microkernel family this configuration will run: the forced
    /// choice if set, else the detected best (honouring `FMM_KERNEL`).
    pub fn resolve_kernel(&self) -> Kernel {
        self.kernel.unwrap_or_else(Kernel::detect)
    }

    /// The sphere rule implied by the order.
    pub fn rule(&self) -> SphereRule {
        SphereRule::for_order(self.order)
    }

    /// Validate parameter sanity; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        let min_ratio = 3f64.sqrt() / 2.0;
        if self.outer_ratio <= min_ratio {
            return Err(format!(
                "outer_ratio {} must exceed the circumscribed-sphere ratio √3/2 ≈ {:.4}",
                self.outer_ratio, min_ratio
            ));
        }
        if self.inner_ratio <= min_ratio {
            return Err(format!(
                "inner_ratio {} must exceed √3/2 ≈ {:.4} (leaf particles must lie inside)",
                self.inner_ratio, min_ratio
            ));
        }
        // The closest T2 source centre sits (d+1) box sides away; the
        // evaluation point can be inner_ratio closer. The outer series only
        // converges if outer_ratio < distance.
        let min_dist = (self.separation.d() + 1) as f64 - self.inner_ratio;
        if self.outer_ratio >= min_dist {
            return Err(format!(
                "outer_ratio {} too large: T2 evaluation distance can shrink to {:.3}",
                self.outer_ratio, min_dist
            ));
        }
        if self.m_trunc == 0 {
            return Err("truncation M must be at least 1".into());
        }
        if self.softening < 0.0 {
            return Err("softening must be non-negative".into());
        }
        if let Some(k) = self.kernel {
            if !k.supported() {
                return Err(format!(
                    "kernel {} is not supported on this host (available: {})",
                    k.name(),
                    Kernel::available()
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        if let Executor::Spmd(opts) = self.executor {
            let p = opts.workers;
            if p == 0 || !p.is_power_of_two() {
                return Err(format!("SPMD worker count {} must be a power of two", p));
            }
            if self.supernodes {
                return Err(
                    "the SPMD executor does not support the supernode decomposition".into(),
                );
            }
            if self.precision == Precision::Mixed {
                return Err(
                    "the SPMD executor does not support the mixed-precision near field".into(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_depth_tracks_n() {
        let p = DepthPolicy::Auto {
            particles_per_leaf: 32.0,
        };
        assert_eq!(p.resolve(100), 2); // 100/64 ≈ 1.6 per leaf already past
        let d1 = p.resolve(10_000);
        let d2 = p.resolve(1_000_000);
        assert!(d2 > d1, "depth must grow with N: {} vs {}", d1, d2);
        // 32 particles per leaf at depth h means N ≈ 32·8^h.
        assert_eq!(p.resolve(32 * 8usize.pow(4)), 4);
    }

    #[test]
    fn fixed_depth_clamped() {
        assert_eq!(DepthPolicy::Fixed(0).resolve(10), 2);
        assert_eq!(DepthPolicy::Fixed(5).resolve(10), 5);
    }

    #[test]
    fn default_config_valid() {
        for d in [2, 3, 5, 7, 14] {
            let cfg = FmmConfig::order(d);
            cfg.validate()
                .unwrap_or_else(|e| panic!("order {}: {}", d, e));
        }
    }

    #[test]
    fn invalid_radii_rejected() {
        assert!(FmmConfig::order(5).radii(0.5, 1.0).validate().is_err());
        assert!(FmmConfig::order(5).radii(1.0, 0.5).validate().is_err());
        assert!(FmmConfig::order(5).radii(2.5, 1.0).validate().is_err());
    }

    #[test]
    fn unsupported_kernel_rejected() {
        // No host supports both AVX-512 and NEON; whichever is foreign
        // here must be rejected, and every available one accepted.
        let foreign = [Kernel::Avx512, Kernel::Neon]
            .into_iter()
            .find(|k| !k.supported())
            .unwrap();
        assert!(FmmConfig::order(5).kernel(foreign).validate().is_err());
        for k in Kernel::available() {
            FmmConfig::order(5).kernel(k).validate().unwrap();
        }
    }

    #[test]
    fn spmd_rejects_mixed_precision() {
        let cfg = FmmConfig::order(5)
            .executor(Executor::spmd(4))
            .precision(Precision::Mixed);
        assert!(cfg.validate().is_err());
        FmmConfig::order(5)
            .precision(Precision::Mixed)
            .validate()
            .unwrap();
    }

    #[test]
    fn builder_chains() {
        let cfg = FmmConfig::order(5)
            .depth(4)
            .truncation(9)
            .supernodes(true)
            .sequential();
        assert_eq!(cfg.m_trunc, 9);
        assert!(cfg.supernodes);
        assert!(!cfg.parallel);
        assert_eq!(cfg.depth.resolve(1), 4);
        assert_eq!(cfg.rule().len(), 12);
    }
}
