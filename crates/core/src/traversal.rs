//! The hierarchy traversal: upward (T1) and downward (T2 + T3) passes.
//!
//! This module is the reproduction of the paper's §3.3: every translation
//! is a K×K matrix, and all boxes at a level that share a matrix are
//! batched into a panel so the whole traversal "takes the form of a
//! collection of matrix–matrix multiplications". Parallelism follows the
//! paper's data-parallel model: boxes of one level are partitioned into
//! slabs of parent z-planes (the analogue of per-VU subgrids); slabs are
//! processed by rayon workers, each of which owns a disjoint, contiguous
//! range of the level's output buffer, so there are no write conflicts.
//! Levels are sequential, as in the paper.
//!
//! All index structure — slab ranges, child gather/scatter lists, offset
//! lists and resolved T2 matrix positions — comes from a precomputed
//! [`TraversalPlan`], so a pass does no per-box index decoding and no
//! hash-map lookups; it only gathers panels and runs GEMMs.
//!
//! Both the aggregated (GEMM) path and a per-box GEMV path are provided;
//! their ratio is the paper's Table 3 experiment.

use crate::field::FieldHierarchy;
use crate::plan::TraversalPlan;
use crate::translations::TranslationSet;
use fmm_linalg::{gemm_acc_with, gemm_flops, multi_gemm_acc_with, Matrix, MultiGemmPlan};
use rayon::prelude::*;

/// Flop counters from a traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalFlops {
    pub t1: u64,
    pub t2: u64,
    pub t3: u64,
    /// Elements moved by gathers/scatters (the paper's "copying" overhead,
    /// linear in K where the GEMMs are quadratic).
    pub copied: u64,
}

/// Execution strategy for the translation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// One GEMV per box pair (the paper's level-2-BLAS baseline).
    Gemv,
    /// Panel-aggregated GEMMs (the paper's level-3-BLAS optimization).
    Gemm,
    /// Multiple-instance GEMM over per-row panels — the paper's CMSSL
    /// multiple-instance call, which aggregates "along one of the three
    /// space dimensions without a data reallocation": each instance is a
    /// K×K by K×S product over one row of parents (S = row extent).
    MultiGemm,
}

/// Gather the children `cidx[p0..p1]` (one octant of parents `p0..p1`)
/// into a `(p1-p0) × k` panel. `src` starts at child box index
/// `src_base` (0 when it is the whole child level, `p0 * 8` when it is
/// one slab's chunk).
fn gather_children(
    src: &[f64],
    src_base: usize,
    cidx: &[u32],
    p0: usize,
    p1: usize,
    k: usize,
    panel: &mut [f64],
) {
    debug_assert_eq!(panel.len(), (p1 - p0) * k);
    for (row, pi) in (p0..p1).enumerate() {
        let ci = cidx[pi] as usize - src_base;
        panel[row * k..(row + 1) * k].copy_from_slice(&src[ci * k..(ci + 1) * k]);
    }
}

/// Scatter-add a `(p1-p0) × k` panel into the children `cidx[p0..p1]`,
/// where `dst` is the slice of the child level starting at child box index
/// `dst_base`.
fn scatter_add_children(
    dst: &mut [f64],
    dst_base: usize,
    cidx: &[u32],
    p0: usize,
    p1: usize,
    k: usize,
    panel: &[f64],
) {
    for (row, pi) in (p0..p1).enumerate() {
        let ci = cidx[pi] as usize - dst_base;
        let d = &mut dst[ci * k..(ci + 1) * k];
        for (dj, sj) in d.iter_mut().zip(&panel[row * k..(row + 1) * k]) {
            *dj += sj;
        }
    }
}

/// Upward pass: for levels l = depth−1 … 2 combine children's outer
/// samples into parents' (T1). Returns flop counters.
pub fn upward_pass(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    plan: &TraversalPlan,
    agg: Aggregation,
    parallel: bool,
) -> TraversalFlops {
    let depth = fh.hierarchy.depth;
    debug_assert_eq!(plan.depth, depth);
    let mut flops = TraversalFlops::default();
    if depth < 3 {
        return flops;
    }
    // Level 1 is included (beyond the paper's level-2 stop) because the
    // supernode path at level 2 reads parent-level outer samples.
    for l in (1..depth).rev() {
        let f = upward_level(fh, ts, plan, l, agg, parallel);
        flops.t1 += f.t1;
        flops.copied += f.copied;
    }
    flops
}

/// One parent level of the upward pass: combine the children at level
/// `l + 1` into the parents at level `l`. Public so the SPMD backend's
/// rank-0 Multigrid-embed region runs the identical per-level code.
pub fn upward_level(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    plan: &TraversalPlan,
    l: u32,
    agg: Aggregation,
    parallel: bool,
) -> TraversalFlops {
    let k = fh.k;
    let mut flops = TraversalFlops::default();
    {
        let n_parents = fh.hierarchy.boxes_at_level(l);
        // Split far into (child source, parent destination) levels.
        let (lo, hi) = fh.far.split_at_mut(l as usize + 1);
        let parents = &mut lo[l as usize];
        let children = &hi[0];
        let lvl = plan.level(l);
        let slabs = &lvl.slabs;
        let plane = slabs[0].1 - slabs[0].0;

        let do_slab = |(slab, out): (&(usize, usize), &mut [f64])| {
            let (p0, p1) = *slab;
            match agg {
                Aggregation::Gemm => {
                    let mut panel = vec![0.0; (p1 - p0) * k];
                    for oct in 0..8 {
                        let cidx = &lvl.children[oct].idx;
                        gather_children(children, 0, cidx, p0, p1, k, &mut panel);
                        gemm_acc_with(
                            plan.kernel,
                            p1 - p0,
                            k,
                            k,
                            &panel,
                            ts.t1t[oct].as_slice(),
                            out,
                        );
                    }
                }
                Aggregation::MultiGemm => {
                    // One instance per parent row (x-axis aggregation, the
                    // CM's no-reallocation direction), all sharing one
                    // translation matrix.
                    let row_len = 1usize << l; // parents per x-row
                    let n_rows = (p1 - p0) / row_len;
                    let mut panel = vec![0.0; (p1 - p0) * k];
                    for oct in 0..8 {
                        let cidx = &lvl.children[oct].idx;
                        gather_children(children, 0, cidx, p0, p1, k, &mut panel);
                        let mut mplan = MultiGemmPlan::new(row_len, k, k);
                        for r in 0..n_rows {
                            // A = the row's gathered child panel, B = the
                            // shared transposed T1 matrix, C = the row's
                            // parents.
                            mplan.push(r * row_len * k, 0, r * row_len * k);
                        }
                        multi_gemm_acc_with(
                            plan.kernel,
                            &mplan,
                            &panel,
                            ts.t1t[oct].as_slice(),
                            out,
                        );
                    }
                }
                Aggregation::Gemv => {
                    let mut xt = vec![0.0; k];
                    for (row, pi) in (p0..p1).enumerate() {
                        for oct in 0..8 {
                            let ci = lvl.children[oct].idx[pi] as usize;
                            let g = &children[ci * k..(ci + 1) * k];
                            // out_j += Σ_i g_i Tᵗ[i][j] — apply the
                            // transposed matrix to a row vector via GEMV on
                            // the transpose: equivalent to T · g with the
                            // untransposed matrix; reuse gemv_acc with Tᵗᵗ
                            // by looping columns.
                            xt.copy_from_slice(g);
                            let t = &ts.t1t[oct];
                            let dst = &mut out[row * k..(row + 1) * k];
                            for (i, &gi) in xt.iter().enumerate() {
                                for (dj, tj) in dst.iter_mut().zip(t.row(i)) {
                                    *dj += gi * tj;
                                }
                            }
                        }
                    }
                }
            }
        };

        if parallel {
            slabs
                .par_iter()
                .zip(parents.par_chunks_mut(plane * k))
                .for_each(do_slab);
        } else {
            for (slab, out) in slabs.iter().zip(parents.chunks_mut(plane * k)) {
                do_slab((slab, out));
            }
        }
        flops.t1 += gemm_flops(n_parents, k, k) * 8;
        flops.copied += (n_parents * 8 * k) as u64;
    }
    flops
}

/// Fused P2O + leaf T1: fill the leaf level's outer samples slab by slab
/// and immediately combine each slab's freshly written children into their
/// parents while the panel is still cache-resident.
///
/// `fill_children(c0, c1, chunk)` must write the outer samples of leaf
/// boxes `c0..c1` into `chunk` (row `i` ↔ box `c0 + i`); the driver passes
/// the per-box P2O loop. The slab decomposition guarantees the children of
/// parents `p0..p1` occupy exactly boxes `p0*8..p1*8`, so each slab owns a
/// disjoint contiguous chunk of both levels.
///
/// Bitwise identical to running the fill over the whole leaf level and
/// then [`upward_level`] at `l = depth − 1` with [`Aggregation::Gemm`]:
/// the per-box arithmetic is unchanged, only the loop order moves.
/// One fused-upward slab work item: ((slab bounds, parent panel), child
/// panel) — the zipped shape rayon hands `do_slab` below.
type SlabItem<'a> = ((&'a (usize, usize), &'a mut [f64]), &'a mut [f64]);

/// Sub-slab consumer for the fused downward sweep: `(c0, c1, chunk)` with
/// row `i` of `chunk` holding the inner samples of box `c0 + i`.
pub type EvalSink<'a> = &'a (dyn Fn(usize, usize, &[f64]) + Sync);

pub fn fused_p2o_upward_leaf(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    plan: &TraversalPlan,
    parallel: bool,
    fill_children: &(dyn Fn(usize, usize, &mut [f64]) + Sync),
) -> TraversalFlops {
    let depth = fh.hierarchy.depth;
    debug_assert!(depth >= 2, "fused P2O+T1 needs a parent level");
    let l = depth - 1;
    let k = fh.k;
    let mut flops = TraversalFlops::default();
    let n_parents = fh.hierarchy.boxes_at_level(l);
    let (lo, hi) = fh.far.split_at_mut(l as usize + 1);
    let parents = &mut lo[l as usize];
    let children = &mut hi[0];
    let lvl = plan.level(l);
    let slabs = &lvl.slabs;
    let plane = slabs[0].1 - slabs[0].0;

    let do_slab = |((slab, out), kids): SlabItem| {
        let (p0, p1) = *slab;
        fill_children(p0 * 8, p1 * 8, kids);
        let mut panel = vec![0.0; (p1 - p0) * k];
        for oct in 0..8 {
            let cidx = &lvl.children[oct].idx;
            gather_children(kids, p0 * 8, cidx, p0, p1, k, &mut panel);
            gemm_acc_with(
                plan.kernel,
                p1 - p0,
                k,
                k,
                &panel,
                ts.t1t[oct].as_slice(),
                out,
            );
        }
    };

    if parallel {
        slabs
            .par_iter()
            .zip(parents.par_chunks_mut(plane * k))
            .zip(children.par_chunks_mut(plane * 8 * k))
            .for_each(do_slab);
    } else {
        for item in slabs
            .iter()
            .zip(parents.chunks_mut(plane * k))
            .zip(children.chunks_mut(plane * 8 * k))
        {
            do_slab(item);
        }
    }
    flops.t1 += gemm_flops(n_parents, k, k) * 8;
    flops.copied += (n_parents * 8 * k) as u64;
    flops
}

/// Multi-instance upward level: `R` instances share one plan and one
/// translation set; every (slab, octant) gathers all instances' child
/// panels into a single instance-major panel and issues ONE GEMM of
/// `R · np` rows — the paper's §2 aggregation trick replayed across
/// *requests* instead of boxes. The GEMM microkernels compute every
/// output row with per-row accumulators and an identical k-loop order
/// regardless of the total row count, and `np` (a parent z-plane,
/// `4^l`) is a multiple of the widest row-tile, so concatenating
/// instances changes no row's bits: each instance's parents come out
/// bitwise identical to a solo [`upward_level`] run.
pub(crate) fn upward_level_batch(
    fhs: &mut [FieldHierarchy],
    ts: &TranslationSet,
    plan: &TraversalPlan,
    l: u32,
) -> TraversalFlops {
    let r = fhs.len();
    let k = fhs[0].k;
    let lvl = plan.level(l);
    let n_parents = fhs[0].hierarchy.boxes_at_level(l);
    let mut flops = TraversalFlops::default();
    for &(p0, p1) in lvl.slabs.iter() {
        let np = p1 - p0;
        let rows = r * np;
        let mut panel = vec![0.0; rows * k];
        let mut acc = vec![0.0; rows * k];
        for oct in 0..8 {
            let cidx = &lvl.children[oct].idx;
            for (ri, fh) in fhs.iter().enumerate() {
                gather_children(
                    &fh.far[l as usize + 1],
                    0,
                    cidx,
                    p0,
                    p1,
                    k,
                    &mut panel[ri * np * k..(ri + 1) * np * k],
                );
            }
            gemm_acc_with(
                plan.kernel,
                rows,
                k,
                k,
                &panel,
                ts.t1t[oct].as_slice(),
                &mut acc,
            );
        }
        // The parents start zeroed and are written only here, so a plain
        // copy lands the accumulated octant sum bit-for-bit.
        for (ri, fh) in fhs.iter_mut().enumerate() {
            fh.far[l as usize][p0 * k..p1 * k]
                .copy_from_slice(&acc[ri * np * k..(ri + 1) * np * k]);
        }
    }
    flops.t1 = gemm_flops(n_parents, k, k) * 8 * r as u64;
    flops.copied = (n_parents * 8 * k * r) as u64;
    flops
}

/// How a T2 offset list maps a child coordinate to its source box.
enum SourceMap {
    /// Same-level interactive sources: `t + off`.
    SameLevel,
    /// Parent-level supernode sources: `(t >> 1) + off`.
    ParentLevel,
}

/// Multi-instance downward level, the batched analogue of
/// [`downward_level`]: T2 source geometry (offset application, domain
/// bounds, the all-rows-invalid skip) is computed once per offset and
/// shared by every instance, and each offset's GEMM runs once over
/// `R · np` rows. Bitwise identical per instance to a solo
/// [`downward_level`] for the same reasons as [`upward_level_batch`]
/// (the T3 gather-then-GEMM sees the same row values as the solo
/// direct-slice GEMM).
pub(crate) fn downward_level_batch(
    fhs: &mut [FieldHierarchy],
    ts: &TranslationSet,
    plan: &TraversalPlan,
    supernodes: bool,
    l: u32,
) -> TraversalFlops {
    let r = fhs.len();
    let k = fhs[0].k;
    let mut flops = TraversalFlops::default();
    let oct_mats = resolve_octant_matrices(ts, plan, supernodes);
    let n_boxes = fhs[0].hierarchy.boxes_at_level(l);
    let l_parent = l - 1;
    let lvl = plan.level(l_parent);
    let apply_t3 = l >= 3; // local field is zero above level 2
    let n_axis = 1i64 << l;
    let parent_axis = 1i64 << l_parent;

    for fh in fhs.iter_mut() {
        fh.local[l as usize].iter_mut().for_each(|x| *x = 0.0);
    }

    for &(p0, p1) in lvl.slabs.iter() {
        let np = p1 - p0;
        let rows = r * np;
        let mut src_panel = vec![0.0; rows * k];
        let mut acc_panel = vec![0.0; rows * k];
        // Per-row source index of the current offset, shared by all
        // instances (the geometry depends only on the plan).
        let mut src_idx = vec![-1isize; np];
        for (oct, mats) in oct_mats.iter().enumerate() {
            acc_panel.iter_mut().for_each(|x| *x = 0.0);

            // ---- T3: parent inner → child inner -----------------------
            if apply_t3 {
                for (ri, fh) in fhs.iter().enumerate() {
                    src_panel[ri * np * k..(ri + 1) * np * k]
                        .copy_from_slice(&fh.local[l_parent as usize][p0 * k..p1 * k]);
                }
                gemm_acc_with(
                    plan.kernel,
                    rows,
                    k,
                    k,
                    &src_panel,
                    ts.t3t[oct].as_slice(),
                    &mut acc_panel,
                );
            }

            // ---- T2: interactive field --------------------------------
            let coords = &lvl.children[oct].coord;
            let op = &plan.octants[oct];
            #[allow(clippy::type_complexity)]
            let lists: Vec<(&[[i32; 3]], &[&Matrix], usize, i64, SourceMap)> = if supernodes {
                vec![
                    (
                        &op.sn_parent_offsets,
                        &mats.sn_parent,
                        l_parent as usize,
                        parent_axis,
                        SourceMap::ParentLevel,
                    ),
                    (
                        &op.sn_child_offsets,
                        &mats.sn_child,
                        l as usize,
                        n_axis,
                        SourceMap::SameLevel,
                    ),
                ]
            } else {
                vec![(
                    &op.offsets,
                    &mats.plain,
                    l as usize,
                    n_axis,
                    SourceMap::SameLevel,
                )]
            };
            for (offsets, matrices, src_level, src_axis, map) in lists {
                for (&off, &m) in offsets.iter().zip(matrices) {
                    let mut any = false;
                    for (row, si) in src_idx.iter_mut().enumerate() {
                        let t = coords[p0 + row];
                        let s = match map {
                            SourceMap::SameLevel => [
                                (t[0] + off[0]) as i64,
                                (t[1] + off[1]) as i64,
                                (t[2] + off[2]) as i64,
                            ],
                            SourceMap::ParentLevel => [
                                ((t[0] >> 1) + off[0]) as i64,
                                ((t[1] >> 1) + off[1]) as i64,
                                ((t[2] >> 1) + off[2]) as i64,
                            ],
                        };
                        *si = if s[0] >= 0
                            && s[1] >= 0
                            && s[2] >= 0
                            && s[0] < src_axis
                            && s[1] < src_axis
                            && s[2] < src_axis
                        {
                            any = true;
                            ((s[2] * src_axis + s[1]) * src_axis + s[0]) as isize
                        } else {
                            -1
                        };
                    }
                    // Same decision as the solo pass: the flag depends
                    // only on geometry, which every instance shares.
                    if !any {
                        continue;
                    }
                    for (ri, fh) in fhs.iter().enumerate() {
                        let source = &fh.far[src_level];
                        for (row, &si) in src_idx.iter().enumerate() {
                            let dst = &mut src_panel[(ri * np + row) * k..(ri * np + row + 1) * k];
                            if si >= 0 {
                                let s = si as usize;
                                dst.copy_from_slice(&source[s * k..(s + 1) * k]);
                            } else {
                                dst.iter_mut().for_each(|x| *x = 0.0);
                            }
                        }
                    }
                    gemm_acc_with(
                        plan.kernel,
                        rows,
                        k,
                        k,
                        &src_panel,
                        m.as_slice(),
                        &mut acc_panel,
                    );
                }
            }

            // Scatter the accumulated panel into each instance's children.
            for (ri, fh) in fhs.iter_mut().enumerate() {
                let out = &mut fh.local[l as usize][p0 * 8 * k..p1 * 8 * k];
                scatter_add_children(
                    out,
                    p0 * 8,
                    &lvl.children[oct].idx,
                    p0,
                    p1,
                    k,
                    &acc_panel[ri * np * k..(ri + 1) * np * k],
                );
            }
        }
    }

    let per_box_t2 = if supernodes {
        plan.octants[0].sn_translation_count as u64
    } else {
        plan.octants[0].offsets.len() as u64
    };
    flops.t2 += per_box_t2 * gemm_flops(n_boxes, k, k) * r as u64;
    if apply_t3 {
        flops.t3 += gemm_flops(n_boxes, k, k) * r as u64;
    }
    flops.copied += (n_boxes * k * r) as u64 * (per_box_t2 + 2);
    flops
}

/// Per-octant translation matrices, resolved once per pass from the plan's
/// stored indices/keys (no hash lookups inside the slab loops).
struct OctantMatrices<'a> {
    plain: Vec<&'a Matrix>,
    sn_parent: Vec<&'a Matrix>,
    sn_child: Vec<&'a Matrix>,
}

fn resolve_octant_matrices<'a>(
    ts: &'a TranslationSet,
    plan: &TraversalPlan,
    supernodes: bool,
) -> Vec<OctantMatrices<'a>> {
    let t2_at =
        |i: &u32| -> &'a Matrix { ts.t2t[*i as usize].as_ref().expect("interactive offset") };
    plan.octants
        .iter()
        .map(|op| {
            if supernodes {
                OctantMatrices {
                    plain: Vec::new(),
                    sn_parent: op
                        .sn_parent_keys
                        .iter()
                        .map(|key| &ts.t2t_super[key])
                        .collect(),
                    sn_child: op.sn_child_idx.iter().map(t2_at).collect(),
                }
            } else {
                OctantMatrices {
                    plain: op.t2_idx.iter().map(t2_at).collect(),
                    sn_parent: Vec::new(),
                    sn_child: Vec::new(),
                }
            }
        })
        .collect()
}

/// Downward pass: for levels l = 2 … depth, convert interactive-field
/// outer samples to inner samples (T2, optionally with supernodes) and add
/// the parent's shifted inner samples (T3).
pub fn downward_pass(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    plan: &TraversalPlan,
    supernodes: bool,
    agg: Aggregation,
    parallel: bool,
) -> TraversalFlops {
    let depth = fh.hierarchy.depth;
    debug_assert_eq!(plan.depth, depth);
    let mut flops = TraversalFlops::default();
    for l in 2..=depth {
        let f = downward_level(fh, ts, plan, supernodes, agg, parallel, l);
        flops.t2 += f.t2;
        flops.t3 += f.t3;
        flops.copied += f.copied;
    }
    flops
}

/// One level of the downward pass: T2 (interactive field) plus T3 (parent
/// inner shift) into `local[l]`, which is zeroed first. Public for the
/// SPMD backend's rank-0 embed region, like [`upward_level`].
pub fn downward_level(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    plan: &TraversalPlan,
    supernodes: bool,
    agg: Aggregation,
    parallel: bool,
    l: u32,
) -> TraversalFlops {
    downward_level_impl(fh, ts, plan, supernodes, agg, parallel, l, None)
}

/// [`downward_level`] fused with a per-slab consumer: once a slab's
/// children hold their complete inner samples (T3 + all T2 octants), the
/// sink runs on `(c0, c1, chunk)` — the slab's first child box, one past
/// its last, and its chunk of `local[l]` — while the samples are still
/// cache-resident. The driver uses this at the leaf level to fuse the
/// final downward sweep with particle evaluation. Bitwise identical to
/// [`downward_level`] followed by a separate pass over `local[l]`.
#[allow(clippy::too_many_arguments)]
pub fn downward_level_fused(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    plan: &TraversalPlan,
    supernodes: bool,
    agg: Aggregation,
    parallel: bool,
    l: u32,
    sink: EvalSink,
) -> TraversalFlops {
    downward_level_impl(fh, ts, plan, supernodes, agg, parallel, l, Some(sink))
}

#[allow(clippy::too_many_arguments)]
fn downward_level_impl(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    plan: &TraversalPlan,
    supernodes: bool,
    agg: Aggregation,
    parallel: bool,
    l: u32,
    sink: Option<EvalSink>,
) -> TraversalFlops {
    let k = fh.k;
    let mut flops = TraversalFlops::default();

    // Resolve every translation matrix reference once, up front.
    let oct_mats = resolve_octant_matrices(ts, plan, supernodes);

    {
        let n_boxes = fh.hierarchy.boxes_at_level(l);
        let l_parent = l - 1;
        let lvl = plan.level(l_parent);
        let (local_lo, local_hi) = fh.local.split_at_mut(l as usize);
        let local_parent: &[f64] = &local_lo[l_parent as usize];
        let local_cur = &mut local_hi[0];
        local_cur.iter_mut().for_each(|x| *x = 0.0);
        let far_cur: &[f64] = &fh.far[l as usize];
        let far_parent: &[f64] = &fh.far[l_parent as usize];
        let slabs = &lvl.slabs;
        let parent_plane = slabs[0].1 - slabs[0].0;
        let child_chunk = parent_plane * 8 * k; // children of one parent plane

        let apply_t3 = l >= 3; // local field is zero above level 2

        // Sub-slab width when a sink consumes finished children: one
        // parent row (8 parents, 64 children) keeps the panels and the
        // consumed chunk cache-resident between production and
        // consumption — a whole slab's T2 streams far more than any
        // cache level holds, which made slab-granular fusion a net
        // loss. Without a sink the whole slab runs as one panel
        // (larger GEMMs, nothing downstream to keep warm).
        const SINK_SUB_PARENTS: usize = 8;

        let do_panel = |s0: usize,
                        s1: usize,
                        p0: usize,
                        out: &mut [f64],
                        src_panel: &mut [f64],
                        acc_panel: &mut [f64]| {
            let np = s1 - s0;
            let dst_base = p0 * 8; // first child box index of the slab
            for (oct, mats) in oct_mats.iter().enumerate() {
                acc_panel.iter_mut().for_each(|x| *x = 0.0);

                // ---- T3: parent inner → child inner -------------------
                if apply_t3 {
                    match agg {
                        Aggregation::Gemm | Aggregation::MultiGemm => {
                            gemm_acc_with(
                                plan.kernel,
                                np,
                                k,
                                k,
                                &local_parent[s0 * k..s1 * k],
                                ts.t3t[oct].as_slice(),
                                acc_panel,
                            );
                        }
                        Aggregation::Gemv => {
                            for row in 0..np {
                                let g = &local_parent[(s0 + row) * k..(s0 + row + 1) * k];
                                let t = &ts.t3t[oct];
                                let dst = &mut acc_panel[row * k..(row + 1) * k];
                                for (i, &gi) in g.iter().enumerate() {
                                    for (dj, tj) in dst.iter_mut().zip(t.row(i)) {
                                        *dj += gi * tj;
                                    }
                                }
                            }
                        }
                    }
                }

                // ---- T2: interactive field ----------------------------
                // Targets: the octant-`oct` children of parents s0..s1, in
                // parent order (rows of the panels); their coordinates come
                // straight from the plan's child map.
                let n_axis = 1i64 << l;
                let coords = &lvl.children[oct].coord;

                let mut run_offset_list =
                    |offsets: &[[i32; 3]],
                     matrices: &[&Matrix],
                     source: &[f64],
                     src_axis: i64,
                     to_src: &dyn Fn([i32; 3], [i32; 3]) -> [i64; 3]| {
                        for (&off, &m) in offsets.iter().zip(matrices) {
                            // Gather sources; out-of-domain sources are zero.
                            let mut any = false;
                            for row in 0..np {
                                let s = to_src(coords[s0 + row], off);
                                let dst = &mut src_panel[row * k..(row + 1) * k];
                                if s[0] >= 0
                                    && s[1] >= 0
                                    && s[2] >= 0
                                    && s[0] < src_axis
                                    && s[1] < src_axis
                                    && s[2] < src_axis
                                {
                                    let si = ((s[2] * src_axis + s[1]) * src_axis + s[0]) as usize;
                                    dst.copy_from_slice(&source[si * k..(si + 1) * k]);
                                    any = true;
                                } else {
                                    dst.iter_mut().for_each(|x| *x = 0.0);
                                }
                            }
                            if !any {
                                continue;
                            }
                            match agg {
                                Aggregation::Gemm | Aggregation::MultiGemm => {
                                    gemm_acc_with(
                                        plan.kernel,
                                        np,
                                        k,
                                        k,
                                        src_panel,
                                        m.as_slice(),
                                        acc_panel,
                                    );
                                }
                                Aggregation::Gemv => {
                                    for row in 0..np {
                                        let g = &src_panel[row * k..(row + 1) * k];
                                        let dst = &mut acc_panel[row * k..(row + 1) * k];
                                        for (i, &gi) in g.iter().enumerate() {
                                            if gi == 0.0 {
                                                continue;
                                            }
                                            for (dj, tj) in dst.iter_mut().zip(m.row(i)) {
                                                *dj += gi * tj;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    };

                let same_level = |t: [i32; 3], off: [i32; 3]| -> [i64; 3] {
                    [
                        (t[0] + off[0]) as i64,
                        (t[1] + off[1]) as i64,
                        (t[2] + off[2]) as i64,
                    ]
                };
                let op = &plan.octants[oct];
                if supernodes {
                    // Parent-level supernode sources.
                    let parent_axis = 1i64 << l_parent;
                    run_offset_list(
                        &op.sn_parent_offsets,
                        &mats.sn_parent,
                        far_parent,
                        parent_axis,
                        &|t, off| {
                            [
                                ((t[0] >> 1) + off[0]) as i64,
                                ((t[1] >> 1) + off[1]) as i64,
                                ((t[2] >> 1) + off[2]) as i64,
                            ]
                        },
                    );
                    // Leftover child-level sources.
                    run_offset_list(
                        &op.sn_child_offsets,
                        &mats.sn_child,
                        far_cur,
                        n_axis,
                        &same_level,
                    );
                } else {
                    run_offset_list(&op.offsets, &mats.plain, far_cur, n_axis, &same_level);
                }

                // Scatter the accumulated panel into the children.
                scatter_add_children(out, dst_base, &lvl.children[oct].idx, s0, s1, k, acc_panel);
            }
        };

        let n_par = 1usize << (l_parent); // parent-level axis length
        let do_slab = |(slab, out): (&(usize, usize), &mut [f64])| {
            let (p0, p1) = *slab;
            // A sub-slab must be whole parent rows so its children form
            // contiguous child-index segments (one per child z-half).
            let step = if sink.is_some() {
                n_par.max(SINK_SUB_PARENTS).min(p1 - p0)
            } else {
                p1 - p0
            };
            let mut src_panel = vec![0.0; step * k];
            let mut acc_panel = vec![0.0; step * k];
            let cax = 2 * n_par; // child-level axis length
            let mut s0 = p0;
            while s0 < p1 {
                let s1 = (s0 + step).min(p1);
                do_panel(
                    s0,
                    s1,
                    p0,
                    &mut *out,
                    &mut src_panel[..(s1 - s0) * k],
                    &mut acc_panel[..(s1 - s0) * k],
                );
                // The sub-slab's children are now final — consume them
                // while the chunk is still hot. Parent rows [r0, r1) of
                // plane z_p own child rows [2r0, 2r1) in each of the two
                // child planes 2z_p and 2z_p + 1.
                if let Some(s) = sink {
                    let z_p = p0 / (n_par * n_par);
                    let r0 = (s0 - p0) / n_par;
                    let r1 = (s1 - p0) / n_par;
                    for h in 0..2 {
                        let c0 = ((2 * z_p + h) * cax + 2 * r0) * cax;
                        let c1 = ((2 * z_p + h) * cax + 2 * r1) * cax;
                        s(c0, c1, &out[(c0 - p0 * 8) * k..(c1 - p0 * 8) * k]);
                    }
                }
                s0 = s1;
            }
        };

        if parallel {
            slabs
                .par_iter()
                .zip(local_cur.par_chunks_mut(child_chunk))
                .for_each(do_slab);
        } else {
            for (slab, out) in slabs.iter().zip(local_cur.chunks_mut(child_chunk)) {
                do_slab((slab, out));
            }
        }

        // Flop accounting (interior-box counts; boundary boxes do less).
        let per_box_t2 = if supernodes {
            plan.octants[0].sn_translation_count as u64
        } else {
            plan.octants[0].offsets.len() as u64
        };
        flops.t2 += per_box_t2 * gemm_flops(n_boxes, k, k);
        if apply_t3 {
            flops.t3 += gemm_flops(n_boxes, k, k);
        }
        flops.copied += (n_boxes * k) as u64 * (per_box_t2 + 2);
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_sphere::SphereRule;
    use fmm_tree::{Hierarchy, Separation};

    fn small_setup(depth: u32) -> (FieldHierarchy, TranslationSet, TraversalPlan) {
        let rule = SphereRule::for_order(3);
        let ts = TranslationSet::build(&rule, 4, 1.0, 1.0, Separation::Two, true);
        let fh = FieldHierarchy::new(Hierarchy::new(depth), rule.len());
        let plan = TraversalPlan::build(depth, Separation::Two);
        (fh, ts, plan)
    }

    fn fill_pseudo(fh: &mut FieldHierarchy) {
        let depth = fh.hierarchy.depth as usize;
        let mut state = 777u64;
        for v in fh.far[depth].iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
    }

    #[test]
    fn upward_parallel_matches_sequential() {
        let (mut a, ts, plan) = small_setup(4);
        fill_pseudo(&mut a);
        let mut b = a.clone();
        upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        upward_pass(&mut b, &ts, &plan, Aggregation::Gemm, true);
        for l in 2..=4usize {
            for (x, y) in a.far[l].iter().zip(&b.far[l]) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upward_multigemm_matches_gemm() {
        let (mut a, ts, plan) = small_setup(4);
        fill_pseudo(&mut a);
        let mut b = a.clone();
        upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        upward_pass(&mut b, &ts, &plan, Aggregation::MultiGemm, false);
        for l in 1..=4usize {
            for (x, y) in a.far[l].iter().zip(&b.far[l]) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upward_gemv_matches_gemm() {
        let (mut a, ts, plan) = small_setup(3);
        fill_pseudo(&mut a);
        let mut b = a.clone();
        upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        upward_pass(&mut b, &ts, &plan, Aggregation::Gemv, false);
        for l in 2..3usize {
            for (x, y) in a.far[l].iter().zip(&b.far[l]) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn downward_parallel_matches_sequential() {
        let (mut a, ts, plan) = small_setup(3);
        fill_pseudo(&mut a);
        upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        let mut b = a.clone();
        downward_pass(&mut a, &ts, &plan, false, Aggregation::Gemm, false);
        downward_pass(&mut b, &ts, &plan, false, Aggregation::Gemm, true);
        for l in 2..=3usize {
            for (x, y) in a.local[l].iter().zip(&b.local[l]) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn downward_gemv_matches_gemm() {
        let (mut a, ts, plan) = small_setup(3);
        fill_pseudo(&mut a);
        upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        let mut b = a.clone();
        downward_pass(&mut a, &ts, &plan, false, Aggregation::Gemm, false);
        downward_pass(&mut b, &ts, &plan, false, Aggregation::Gemv, false);
        for (x, y) in a.local[3].iter().zip(&b.local[3]) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn downward_supernodes_use_plan_matrices() {
        // The supernode path resolves its matrices through the plan's
        // stored keys/indices; make sure that machinery runs and counts
        // fewer translations than the plain path (the end-to-end accuracy
        // check on physical data lives in the driver tests).
        let (mut a, ts, plan) = small_setup(3);
        fill_pseudo(&mut a);
        upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        let mut b = a.clone();
        let plain = downward_pass(&mut a, &ts, &plan, false, Aggregation::Gemm, false);
        let sup = downward_pass(&mut b, &ts, &plan, true, Aggregation::Gemm, false);
        assert!(sup.t2 < plain.t2, "{} !< {}", sup.t2, plain.t2);
        assert!(b.local[3].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn upward_flops_counted() {
        let (mut a, ts, plan) = small_setup(4);
        fill_pseudo(&mut a);
        let f = upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        // Levels 3, 2 and 1 are computed: 8·2K²·(8³ + 8² + 8) with K = 6.
        let k = 6u64;
        assert_eq!(f.t1, 8 * 2 * k * k * (512 + 64 + 8));
    }

    #[test]
    fn fused_p2o_upward_is_bitwise_identical() {
        let (mut plain, ts, plan) = small_setup(4);
        fill_pseudo(&mut plain);
        let leaf = plain.far[4].clone();
        upward_level(&mut plain, &ts, &plan, 3, Aggregation::Gemm, false);

        for parallel in [false, true] {
            let (mut fused, _, _) = small_setup(4);
            let k = fused.k;
            let fill = |c0: usize, c1: usize, kids: &mut [f64]| {
                kids.copy_from_slice(&leaf[c0 * k..c1 * k]);
            };
            let f = fused_p2o_upward_leaf(&mut fused, &ts, &plan, parallel, &fill);
            assert!(f.t1 > 0);
            for (x, y) in plain.far[4].iter().zip(&fused.far[4]) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in plain.far[3].iter().zip(&fused.far[3]) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn downward_fused_sink_is_bitwise_identical() {
        let (mut plain, ts, plan) = small_setup(3);
        fill_pseudo(&mut plain);
        upward_pass(&mut plain, &ts, &plan, Aggregation::Gemm, false);
        let mut fused = plain.clone();
        downward_pass(&mut plain, &ts, &plan, false, Aggregation::Gemm, false);

        // Run levels 2..depth plain, then the leaf level fused; the sink
        // reassembles local[3] from the per-slab chunks it is handed.
        downward_level(&mut fused, &ts, &plan, false, Aggregation::Gemm, false, 2);
        let n_leaf = 1usize << (3 * 3);
        let k = fused.k;
        let collected = std::sync::Mutex::new(vec![0.0f64; n_leaf * k]);
        let sink = |c0: usize, c1: usize, chunk: &[f64]| {
            collected.lock().unwrap()[c0 * k..c1 * k].copy_from_slice(chunk);
        };
        downward_level_fused(
            &mut fused,
            &ts,
            &plan,
            false,
            Aggregation::Gemm,
            true,
            3,
            &sink,
        );
        let collected = collected.into_inner().unwrap();
        for (x, y) in plain.local[3].iter().zip(&fused.local[3]) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in fused.local[3].iter().zip(&collected) {
            assert_eq!(x.to_bits(), y.to_bits(), "sink saw a stale chunk");
        }
    }

    #[test]
    fn empty_far_field_stays_zero() {
        let (mut a, ts, plan) = small_setup(3);
        upward_pass(&mut a, &ts, &plan, Aggregation::Gemm, false);
        downward_pass(&mut a, &ts, &plan, false, Aggregation::Gemm, false);
        assert!(a.local[3].iter().all(|&x| x == 0.0));
    }
}
