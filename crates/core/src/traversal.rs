//! The hierarchy traversal: upward (T1) and downward (T2 + T3) passes.
//!
//! This module is the reproduction of the paper's §3.3: every translation
//! is a K×K matrix, and all boxes at a level that share a matrix are
//! batched into a panel so the whole traversal "takes the form of a
//! collection of matrix–matrix multiplications". Parallelism follows the
//! paper's data-parallel model: boxes of one level are partitioned into
//! slabs of parent z-planes (the analogue of per-VU subgrids); slabs are
//! processed by rayon workers, each of which owns a disjoint, contiguous
//! range of the level's output buffer, so there are no write conflicts.
//! Levels are sequential, as in the paper.
//!
//! Both the aggregated (GEMM) path and a per-box GEMV path are provided;
//! their ratio is the paper's Table 3 experiment.

use crate::field::FieldHierarchy;
use crate::translations::TranslationSet;
use fmm_linalg::{gemm_acc, gemm_flops, multi_gemm_acc, MultiGemmPlan};
use fmm_tree::{interactive_field_offsets, supernode_decomposition, BoxCoord};
use rayon::prelude::*;

/// Flop counters from a traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalFlops {
    pub t1: u64,
    pub t2: u64,
    pub t3: u64,
    /// Elements moved by gathers/scatters (the paper's "copying" overhead,
    /// linear in K where the GEMMs are quadratic).
    pub copied: u64,
}

/// Execution strategy for the translation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// One GEMV per box pair (the paper's level-2-BLAS baseline).
    Gemv,
    /// Panel-aggregated GEMMs (the paper's level-3-BLAS optimization).
    Gemm,
    /// Multiple-instance GEMM over per-row panels — the paper's CMSSL
    /// multiple-instance call, which aggregates "along one of the three
    /// space dimensions without a data reallocation": each instance is a
    /// K×K by K×S product over one row of parents (S = row extent).
    MultiGemm,
}

#[inline]
fn child_index(parent: BoxCoord, oct: usize) -> usize {
    parent.child(oct).index()
}

/// Gather the octant-`oct` children of parents `p0..p1` (row-major parent
/// indices at level `l`) into a `(p1-p0) × k` panel.
fn gather_children(
    src_child_level: &[f64],
    l_parent: u32,
    p0: usize,
    p1: usize,
    oct: usize,
    k: usize,
    panel: &mut [f64],
) {
    debug_assert_eq!(panel.len(), (p1 - p0) * k);
    for (row, pi) in (p0..p1).enumerate() {
        let parent = BoxCoord::from_index(l_parent, pi);
        let ci = child_index(parent, oct);
        panel[row * k..(row + 1) * k].copy_from_slice(&src_child_level[ci * k..(ci + 1) * k]);
    }
}

/// Scatter-add a `(p1-p0) × k` panel into the octant-`oct` children of
/// parents `p0..p1`, where `dst` is the slice of the child level starting
/// at child box index `dst_base`.
fn scatter_add_children(
    dst: &mut [f64],
    dst_base: usize,
    l_parent: u32,
    p0: usize,
    p1: usize,
    oct: usize,
    k: usize,
    panel: &[f64],
) {
    for (row, pi) in (p0..p1).enumerate() {
        let parent = BoxCoord::from_index(l_parent, pi);
        let ci = child_index(parent, oct) - dst_base;
        let d = &mut dst[ci * k..(ci + 1) * k];
        for (dj, sj) in d.iter_mut().zip(&panel[row * k..(row + 1) * k]) {
            *dj += sj;
        }
    }
}

/// Slab decomposition of a parent level: ranges of parent box indices, one
/// z-plane (or more for small levels) each, whose children occupy disjoint
/// contiguous ranges of the child level.
fn parent_slabs(l_parent: u32) -> Vec<(usize, usize)> {
    let n = 1usize << l_parent; // parents per axis
    let plane = n * n;
    (0..n).map(|z| (z * plane, (z + 1) * plane)).collect()
}

/// Upward pass: for levels l = depth−1 … 2 combine children's outer
/// samples into parents' (T1). Returns flop counters.
pub fn upward_pass(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    agg: Aggregation,
    parallel: bool,
) -> TraversalFlops {
    let k = fh.k;
    let depth = fh.hierarchy.depth;
    let mut flops = TraversalFlops::default();
    if depth < 3 {
        return flops;
    }
    // Level 1 is included (beyond the paper's level-2 stop) because the
    // supernode path at level 2 reads parent-level outer samples.
    for l in (1..depth).rev() {
        let n_parents = fh.hierarchy.boxes_at_level(l);
        // Split far into (child source, parent destination) levels.
        let (lo, hi) = fh.far.split_at_mut(l as usize + 1);
        let parents = &mut lo[l as usize];
        let children = &hi[0];
        let slabs = parent_slabs(l);
        let plane = slabs[0].1 - slabs[0].0;

        let do_slab = |(slab, out): (&(usize, usize), &mut [f64])| {
            let (p0, p1) = *slab;
            match agg {
                Aggregation::Gemm => {
                    let mut panel = vec![0.0; (p1 - p0) * k];
                    for oct in 0..8 {
                        gather_children(children, l, p0, p1, oct, k, &mut panel);
                        gemm_acc(p1 - p0, k, k, &panel, ts.t1t[oct].as_slice(), out);
                    }
                }
                Aggregation::MultiGemm => {
                    // One instance per parent row (x-axis aggregation, the
                    // CM's no-reallocation direction), all sharing one
                    // translation matrix.
                    let row_len = 1usize << l; // parents per x-row
                    let n_rows = (p1 - p0) / row_len;
                    let mut panel = vec![0.0; (p1 - p0) * k];
                    for oct in 0..8 {
                        gather_children(children, l, p0, p1, oct, k, &mut panel);
                        let mut plan = MultiGemmPlan::new(row_len, k, k);
                        for r in 0..n_rows {
                            // A = the row's gathered child panel, B = the
                            // shared transposed T1 matrix, C = the row's
                            // parents.
                            plan.push(r * row_len * k, 0, r * row_len * k);
                        }
                        multi_gemm_acc(&plan, &panel, ts.t1t[oct].as_slice(), out);
                    }
                }
                Aggregation::Gemv => {
                    let mut xt = vec![0.0; k];
                    for (row, pi) in (p0..p1).enumerate() {
                        let parent = BoxCoord::from_index(l, pi);
                        for oct in 0..8 {
                            let ci = child_index(parent, oct);
                            let g = &children[ci * k..(ci + 1) * k];
                            // out_j += Σ_i g_i Tᵗ[i][j] — apply the
                            // transposed matrix to a row vector via GEMV on
                            // the transpose: equivalent to T · g with the
                            // untransposed matrix; reuse gemv_acc with Tᵗᵗ
                            // by looping columns.
                            xt.copy_from_slice(g);
                            let t = &ts.t1t[oct];
                            let dst = &mut out[row * k..(row + 1) * k];
                            for i in 0..k {
                                let gi = xt[i];
                                let trow = t.row(i);
                                for (dj, tj) in dst.iter_mut().zip(trow) {
                                    *dj += gi * tj;
                                }
                            }
                        }
                    }
                }
            }
        };

        if parallel {
            slabs
                .par_iter()
                .zip(parents.par_chunks_mut(plane * k))
                .for_each(do_slab);
        } else {
            for (slab, out) in slabs.iter().zip(parents.chunks_mut(plane * k)) {
                do_slab((slab, out));
            }
        }
        flops.t1 += gemm_flops(n_parents, k, k) * 8;
        flops.copied += (n_parents * 8 * k) as u64;
    }
    flops
}

/// Downward pass: for levels l = 2 … depth, convert interactive-field
/// outer samples to inner samples (T2, optionally with supernodes) and add
/// the parent's shifted inner samples (T3).
pub fn downward_pass(
    fh: &mut FieldHierarchy,
    ts: &TranslationSet,
    supernodes: bool,
    agg: Aggregation,
    parallel: bool,
) -> TraversalFlops {
    let k = fh.k;
    let depth = fh.hierarchy.depth;
    let sep = ts.separation;
    let mut flops = TraversalFlops::default();

    // Precompute per-octant interactive lists and supernode decompositions.
    let octant_offsets: Vec<Vec<[i32; 3]>> = (0..8)
        .map(|oct| {
            let o = [
                (oct & 1) as i32,
                ((oct >> 1) & 1) as i32,
                ((oct >> 2) & 1) as i32,
            ];
            interactive_field_offsets(o, sep)
        })
        .collect();
    let octant_supernodes: Vec<_> = (0..8)
        .map(|oct| {
            let o = [
                (oct & 1) as i32,
                ((oct >> 1) & 1) as i32,
                ((oct >> 2) & 1) as i32,
            ];
            supernode_decomposition(o, sep)
        })
        .collect();

    for l in 2..=depth {
        let n_boxes = fh.hierarchy.boxes_at_level(l);
        let l_parent = l - 1;
        let (local_lo, local_hi) = fh.local.split_at_mut(l as usize);
        let local_parent: &[f64] = &local_lo[l_parent as usize];
        let local_cur = &mut local_hi[0];
        local_cur.iter_mut().for_each(|x| *x = 0.0);
        let far_cur: &[f64] = &fh.far[l as usize];
        let far_parent: &[f64] = &fh.far[l_parent as usize];
        let slabs = parent_slabs(l_parent);
        let parent_plane = slabs[0].1 - slabs[0].0;
        let child_chunk = parent_plane * 8 * k; // children of one parent plane

        let apply_t3 = l >= 3; // local field is zero above level 2

        let do_slab = |(slab, out): (&(usize, usize), &mut [f64])| {
            let (p0, p1) = *slab;
            let np = p1 - p0;
            let dst_base = p0 * 8; // first child box index of the slab
            let mut src_panel = vec![0.0; np * k];
            let mut acc_panel = vec![0.0; np * k];
            for oct in 0..8 {
                acc_panel.iter_mut().for_each(|x| *x = 0.0);

                // ---- T3: parent inner → child inner -------------------
                if apply_t3 {
                    match agg {
                        Aggregation::Gemm | Aggregation::MultiGemm => {
                            gemm_acc(
                                np,
                                k,
                                k,
                                &local_parent[p0 * k..p1 * k],
                                ts.t3t[oct].as_slice(),
                                &mut acc_panel,
                            );
                        }
                        Aggregation::Gemv => {
                            for row in 0..np {
                                let g = &local_parent[(p0 + row) * k..(p0 + row + 1) * k];
                                let t = &ts.t3t[oct];
                                let dst = &mut acc_panel[row * k..(row + 1) * k];
                                for i in 0..k {
                                    let gi = g[i];
                                    for (dj, tj) in dst.iter_mut().zip(t.row(i)) {
                                        *dj += gi * tj;
                                    }
                                }
                            }
                        }
                    }
                }

                // ---- T2: interactive field ----------------------------
                // Targets: the octant-`oct` children of parents p0..p1, in
                // parent order (rows of the panels).
                let n_axis = 1i64 << l;
                let target_coord = |row: usize| -> [i64; 3] {
                    let parent = BoxCoord::from_index(l_parent, p0 + row);
                    let c = parent.child(oct);
                    [c.x as i64, c.y as i64, c.z as i64]
                };

                let mut run_offset_list =
                    |offsets: &[[i32; 3]],
                     matrices: &[&fmm_linalg::Matrix],
                     source: &[f64],
                     src_axis: i64,
                     to_src: &dyn Fn([i64; 3], [i32; 3]) -> [i64; 3]| {
                        for (&off, &m) in offsets.iter().zip(matrices) {
                            // Gather sources; out-of-domain sources are zero.
                            let mut any = false;
                            for row in 0..np {
                                let t = target_coord(row);
                                let s = to_src(t, off);
                                let dst = &mut src_panel[row * k..(row + 1) * k];
                                if s[0] >= 0
                                    && s[1] >= 0
                                    && s[2] >= 0
                                    && s[0] < src_axis
                                    && s[1] < src_axis
                                    && s[2] < src_axis
                                {
                                    let si =
                                        ((s[2] * src_axis + s[1]) * src_axis + s[0]) as usize;
                                    dst.copy_from_slice(&source[si * k..(si + 1) * k]);
                                    any = true;
                                } else {
                                    dst.iter_mut().for_each(|x| *x = 0.0);
                                }
                            }
                            if !any {
                                continue;
                            }
                            match agg {
                                Aggregation::Gemm | Aggregation::MultiGemm => {
                                    gemm_acc(np, k, k, &src_panel, m.as_slice(), &mut acc_panel);
                                }
                                Aggregation::Gemv => {
                                    for row in 0..np {
                                        let g = &src_panel[row * k..(row + 1) * k];
                                        let dst = &mut acc_panel[row * k..(row + 1) * k];
                                        for i in 0..k {
                                            let gi = g[i];
                                            if gi == 0.0 {
                                                continue;
                                            }
                                            for (dj, tj) in dst.iter_mut().zip(m.row(i)) {
                                                *dj += gi * tj;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    };

                let same_level =
                    |t: [i64; 3], off: [i32; 3]| -> [i64; 3] {
                        [
                            t[0] + off[0] as i64,
                            t[1] + off[1] as i64,
                            t[2] + off[2] as i64,
                        ]
                    };
                if supernodes {
                    let sd = &octant_supernodes[oct];
                    // Parent-level supernode sources.
                    let parent_axis = 1i64 << l_parent;
                    let sn_offsets: Vec<[i32; 3]> =
                        sd.parents.iter().map(|p| p.parent_offset).collect();
                    let sn_matrices: Vec<&fmm_linalg::Matrix> = sd
                        .parents
                        .iter()
                        .map(|p| &ts.t2t_super[&p.center_offset_half])
                        .collect();
                    run_offset_list(
                        &sn_offsets,
                        &sn_matrices,
                        far_parent,
                        parent_axis,
                        &|t, off| {
                            [
                                (t[0] >> 1) + off[0] as i64,
                                (t[1] >> 1) + off[1] as i64,
                                (t[2] >> 1) + off[2] as i64,
                            ]
                        },
                    );
                    // Leftover child-level sources.
                    let ch_matrices: Vec<&fmm_linalg::Matrix> = sd
                        .children
                        .iter()
                        .map(|&off| ts.t2(off).expect("interactive offset"))
                        .collect();
                    run_offset_list(&sd.children, &ch_matrices, far_cur, n_axis, &same_level);
                } else {
                    let matrices: Vec<&fmm_linalg::Matrix> = octant_offsets[oct]
                        .iter()
                        .map(|&off| ts.t2(off).expect("interactive offset"))
                        .collect();
                    run_offset_list(
                        &octant_offsets[oct],
                        &matrices,
                        far_cur,
                        n_axis,
                        &same_level,
                    );
                }

                // Scatter the accumulated panel into the children.
                scatter_add_children(out, dst_base, l_parent, p0, p1, oct, k, &acc_panel);
            }
        };

        if parallel {
            slabs
                .par_iter()
                .zip(local_cur.par_chunks_mut(child_chunk))
                .for_each(do_slab);
        } else {
            for (slab, out) in slabs.iter().zip(local_cur.chunks_mut(child_chunk)) {
                do_slab((slab, out));
            }
        }

        // Flop accounting (interior-box counts; boundary boxes do less).
        let per_box_t2 = if supernodes {
            octant_supernodes[0].translation_count() as u64
        } else {
            octant_offsets[0].len() as u64
        };
        flops.t2 += per_box_t2 * gemm_flops(n_boxes, k, k);
        if apply_t3 {
            flops.t3 += gemm_flops(n_boxes, k, k);
        }
        flops.copied += (n_boxes * k) as u64 * (per_box_t2 + 2);
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_sphere::SphereRule;
    use fmm_tree::{Hierarchy, Separation};

    fn small_setup(depth: u32) -> (FieldHierarchy, TranslationSet) {
        let rule = SphereRule::for_order(3);
        let ts = TranslationSet::build(&rule, 4, 1.0, 1.0, Separation::Two, true);
        let fh = FieldHierarchy::new(Hierarchy::new(depth), rule.len());
        (fh, ts)
    }

    fn fill_pseudo(fh: &mut FieldHierarchy) {
        let depth = fh.hierarchy.depth as usize;
        let mut state = 777u64;
        for v in fh.far[depth].iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
    }

    #[test]
    fn upward_parallel_matches_sequential() {
        let (mut a, ts) = small_setup(4);
        fill_pseudo(&mut a);
        let mut b = a.clone();
        upward_pass(&mut a, &ts, Aggregation::Gemm, false);
        upward_pass(&mut b, &ts, Aggregation::Gemm, true);
        for l in 2..=4usize {
            for (x, y) in a.far[l].iter().zip(&b.far[l]) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upward_multigemm_matches_gemm() {
        let (mut a, ts) = small_setup(4);
        fill_pseudo(&mut a);
        let mut b = a.clone();
        upward_pass(&mut a, &ts, Aggregation::Gemm, false);
        upward_pass(&mut b, &ts, Aggregation::MultiGemm, false);
        for l in 1..=4usize {
            for (x, y) in a.far[l].iter().zip(&b.far[l]) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upward_gemv_matches_gemm() {
        let (mut a, ts) = small_setup(3);
        fill_pseudo(&mut a);
        let mut b = a.clone();
        upward_pass(&mut a, &ts, Aggregation::Gemm, false);
        upward_pass(&mut b, &ts, Aggregation::Gemv, false);
        for l in 2..3usize {
            for (x, y) in a.far[l].iter().zip(&b.far[l]) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn downward_parallel_matches_sequential() {
        let (mut a, ts) = small_setup(3);
        fill_pseudo(&mut a);
        upward_pass(&mut a, &ts, Aggregation::Gemm, false);
        let mut b = a.clone();
        downward_pass(&mut a, &ts, false, Aggregation::Gemm, false);
        downward_pass(&mut b, &ts, false, Aggregation::Gemm, true);
        for l in 2..=3usize {
            for (x, y) in a.local[l].iter().zip(&b.local[l]) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn downward_gemv_matches_gemm() {
        let (mut a, ts) = small_setup(3);
        fill_pseudo(&mut a);
        upward_pass(&mut a, &ts, Aggregation::Gemm, false);
        let mut b = a.clone();
        downward_pass(&mut a, &ts, false, Aggregation::Gemm, false);
        downward_pass(&mut b, &ts, false, Aggregation::Gemv, false);
        for (x, y) in a.local[3].iter().zip(&b.local[3]) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn upward_flops_counted() {
        let (mut a, ts) = small_setup(4);
        fill_pseudo(&mut a);
        let f = upward_pass(&mut a, &ts, Aggregation::Gemm, false);
        // Levels 3, 2 and 1 are computed: 8·2K²·(8³ + 8² + 8) with K = 6.
        let k = 6u64;
        assert_eq!(f.t1, 8 * 2 * k * k * (512 + 64 + 8));
    }

    #[test]
    fn empty_far_field_stays_zero() {
        let (mut a, ts) = small_setup(3);
        upward_pass(&mut a, &ts, Aggregation::Gemm, false);
        downward_pass(&mut a, &ts, false, Aggregation::Gemm, false);
        assert!(a.local[3].iter().all(|&x| x == 0.0));
    }
}
