//! Near-field direct evaluation (§3.4).
//!
//! At the optimal hierarchy depth the direct evaluation in the near field
//! accounts for about half of all arithmetic, so its efficiency is crucial.
//! The particle–particle interactions are structured as neighbour box–box
//! interactions over the d-separation neighbourhood (124 neighbours for
//! two-separation); exploiting Newton's third law halves that to 62
//! box–box interactions (the paper's Fig. 10 traversal). Three forms are
//! provided:
//!
//! * a target-centric sweep that parallelizes over target boxes without
//!   write conflicts but pays the full 124-neighbour pair count;
//! * the sequential symmetric sweep (the correctness oracle and the
//!   flop-count reference for experiment E13);
//! * a **colored symmetric** sweep ([`near_field_symmetric_colored`]) that
//!   keeps the third-law 2× pair savings *and* parallelizes: leaf boxes are
//!   tiled into 4×4×4 blocks and blocks are colored by the 2×2×2 parity of
//!   their block coordinates. A block's symmetric writes stay within
//!   `[−d, 3+d]` of its origin (d ≤ 2), while same-color blocks are ≥ 8
//!   boxes apart on any axis they differ in — so every color phase is a
//!   conflict-free `par_iter` over blocks. This is the shared-memory
//!   analogue of the paper's travelling-accumulator conflict resolution.
//!
//! The innermost particle–particle loops stream the SoA coordinate arrays
//! through the [`fmm_linalg::pairwise`] rsqrt microkernels (scalar, AVX2,
//! AVX-512, or NEON), dispatched per sweep by the [`Kernel`] recorded on
//! the traversal plan. The mixed-precision (f32 near field) sweeps live in
//! [`crate::near32`].

use crate::particles::BinnedParticles;
use fmm_linalg::{pairwise, Kernel};
use fmm_tree::{near_field_offsets, BoxCoord, Separation};
use rayon::prelude::*;

/// Flops charged per pairwise potential interaction (3 subs, 3 mults, 2
/// adds, rsqrt, multiply–accumulate — the conventional count used when
/// comparing N-body codes).
pub const PAIR_FLOPS: u64 = 10;
/// Flops per pairwise potential+field interaction.
pub const PAIR_FORCE_FLOPS: u64 = 20;

/// Counters from a near-field sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NearFieldStats {
    /// Particle pair interactions evaluated (symmetric pairs counted
    /// once).
    pub pair_interactions: u64,
    /// Box–box interactions processed (self-box counted once).
    pub box_pairs: u64,
    /// Flops charged.
    pub flops: u64,
}

impl NearFieldStats {
    /// Accumulate another sweep's counters (batched evaluation sums its
    /// per-request sweeps).
    pub fn merge(&mut self, other: &NearFieldStats) {
        self.pair_interactions += other.pair_interactions;
        self.box_pairs += other.box_pairs;
        self.flops += other.flops;
    }
}

/// Symmetric one-target update with an explicit kernel: the target
/// gathers Σ q_s·r⁻¹ (returned) while each source accumulates q_t·r⁻¹
/// into `s_out`. Public because the SPMD executor's travelling-accumulator
/// sweep must apply the *same* kernel in the same order to stay bitwise
/// identical to the shared-memory paths (it reads the kernel off the
/// shared traversal plan).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pair_exchange_with(
    kernel: Kernel,
    tx: f64,
    ty: f64,
    tz: f64,
    tq: f64,
    eps2: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    s_out: &mut [f64],
) -> f64 {
    pairwise::exchange_with(kernel, tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out)
}

/// [`pair_exchange_with`] using the host-detected kernel.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pair_exchange(
    tx: f64,
    ty: f64,
    tz: f64,
    tq: f64,
    eps2: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    s_out: &mut [f64],
) -> f64 {
    pairwise::exchange_with(
        Kernel::detect(),
        tx,
        ty,
        tz,
        tq,
        eps2,
        xs,
        ys,
        zs,
        qs,
        s_out,
    )
}

/// Accumulate potentials of particles in `t_range` due to particles in
/// `s_range` (one direction).
#[inline]
fn box_pair_potential(
    kernel: Kernel,
    bp: &BinnedParticles,
    t_range: std::ops::Range<usize>,
    s_range: std::ops::Range<usize>,
    eps2: f64,
    out: &mut [f64],
) -> u64 {
    let xs = &bp.x[s_range.clone()];
    let ys = &bp.y[s_range.clone()];
    let zs = &bp.z[s_range.clone()];
    let qs = &bp.q[s_range.clone()];
    let mut pairs = 0u64;
    for (ti, o) in t_range.clone().zip(out.iter_mut()) {
        *o += pairwise::gather_with(kernel, bp.x[ti], bp.y[ti], bp.z[ti], eps2, xs, ys, zs, qs);
        pairs += s_range.len() as u64;
    }
    pairs
}

/// Potentials within one box, pairwise symmetric, excluding self terms.
/// Public for the same reason as [`pair_exchange`]: every backend's
/// self-box pass must be this exact loop.
#[inline]
pub fn self_box_potential(
    bp: &BinnedParticles,
    range: std::ops::Range<usize>,
    eps2: f64,
    out: &mut [f64],
) -> u64 {
    let n = range.len();
    let base = range.start;
    let mut pairs = 0u64;
    for a in 0..n {
        let ia = base + a;
        let (xa, ya, za, qa) = (bp.x[ia], bp.y[ia], bp.z[ia], bp.q[ia]);
        let mut acc = 0.0;
        for (b, ob) in out.iter_mut().enumerate().take(n).skip(a + 1) {
            let ib = base + b;
            let dx = xa - bp.x[ib];
            let dy = ya - bp.y[ib];
            let dz = za - bp.z[ib];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            acc += bp.q[ib] * inv_r;
            *ob += qa * inv_r;
            pairs += 1;
        }
        out[a] += acc;
    }
    pairs
}

/// Split a buffer into per-box mutable slices following the binning CSR.
fn per_box_slices<'a>(bp: &BinnedParticles, mut buf: &'a mut [f64]) -> Vec<&'a mut [f64]> {
    let n_boxes = bp.binning.starts.len() - 1;
    let mut out = Vec::with_capacity(n_boxes);
    let mut consumed = 0usize;
    for b in 0..n_boxes {
        let len = bp.binning.count(b);
        let (head, tail) = buf.split_at_mut(len);
        out.push(head);
        buf = tail;
        consumed += len;
    }
    debug_assert_eq!(consumed, bp.len());
    out
}

/// Target-centric near field: every target box accumulates from itself and
/// all d-separation neighbours. `out` is in **sorted** particle order.
/// Parallelizes over target boxes with no write conflicts.
pub fn near_field_potentials(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    out: &mut [f64],
) -> NearFieldStats {
    near_field_potentials_softened(bp, sep, parallel, 0.0, out)
}

/// [`near_field_potentials`] with Plummer softening: the pairwise kernel
/// becomes q/√(r² + ε²). Softening only touches the near field — with
/// ε well below the leaf box side the far-field approximations are
/// unaffected (their sources sit at distance ≥ (d+1−ρ)·side, so the
/// relative perturbation is O(ε²/r²)).
pub fn near_field_potentials_softened(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    near_field_potentials_softened_with(Kernel::detect(), bp, sep, parallel, eps, out)
}

/// [`near_field_potentials_softened`] with an explicit kernel choice.
pub fn near_field_potentials_softened_with(
    kernel: Kernel,
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    let eps2 = eps * eps;
    assert_eq!(out.len(), bp.len());
    let offsets = near_field_offsets(sep);
    let level = bp.level;
    let slices = per_box_slices(bp, out);

    let work = |(b, o): (usize, &mut &mut [f64])| -> NearFieldStats {
        let t = BoxCoord::from_index(level, b);
        let t_range = bp.range(b);
        let mut st = NearFieldStats::default();
        st.pair_interactions += self_box_potential(bp, t_range.clone(), eps2, o);
        st.box_pairs += 1;
        for &d in &offsets {
            if let Some(s) = t.offset(d) {
                let s_range = bp.range(s.index());
                if !s_range.is_empty() {
                    st.pair_interactions +=
                        box_pair_potential(kernel, bp, t_range.clone(), s_range, eps2, o);
                    st.box_pairs += 1;
                }
            }
        }
        st
    };

    let mut slices = slices;
    // det: the reduction adds integer counters; potentials accumulate in
    // disjoint per-box slices, unaffected by the combine order.
    let total: NearFieldStats = if parallel {
        slices
            .par_iter_mut()
            .enumerate()
            .map(work)
            .reduce(NearFieldStats::default, |a, b| NearFieldStats {
                pair_interactions: a.pair_interactions + b.pair_interactions,
                box_pairs: a.box_pairs + b.box_pairs,
                flops: 0,
            })
    } else {
        let mut acc = NearFieldStats::default();
        for item in slices.iter_mut().enumerate() {
            let st = work(item);
            acc.pair_interactions += st.pair_interactions;
            acc.box_pairs += st.box_pairs;
        }
        acc
    };
    NearFieldStats {
        flops: total.pair_interactions * PAIR_FLOPS,
        ..total
    }
}

/// Symmetric near field exploiting Newton's third law: each unordered box
/// pair is visited once (62 of the 124 two-separation neighbours, via the
/// lexicographically-positive half of the offset set), and both boxes'
/// particles are updated. Sequential — the paper's CM version resolves the
/// write conflicts with a travelling accumulator; here the symmetric form
/// exists to measure the ~2× pair reduction (experiment E13) and as a
/// reference result.
pub fn near_field_symmetric(bp: &BinnedParticles, sep: Separation) -> (Vec<f64>, NearFieldStats) {
    let mut out = vec![0.0; bp.len()];
    let level = bp.level;
    let n_boxes = bp.binning.starts.len() - 1;
    let mut st = NearFieldStats::default();
    // Positive half: offsets that are lexicographically greater than zero.
    let half: Vec<[i32; 3]> = near_field_offsets(sep)
        .into_iter()
        .filter(|o| *o > [0, 0, 0])
        .collect();
    debug_assert_eq!(half.len(), sep.near_field_size() / 2);

    for b in 0..n_boxes {
        let t = BoxCoord::from_index(level, b);
        let t_range = bp.range(b);
        if t_range.is_empty() {
            continue;
        }
        // Own box, symmetric.
        {
            let (t0, t1) = (t_range.start, t_range.end);
            let mut local = vec![0.0; t1 - t0];
            st.pair_interactions += self_box_potential(bp, t_range.clone(), 0.0, &mut local);
            st.box_pairs += 1;
            for (i, v) in local.into_iter().enumerate() {
                out[t0 + i] += v;
            }
        }
        for &d in &half {
            if let Some(s) = t.offset(d) {
                let s_range = bp.range(s.index());
                if s_range.is_empty() {
                    continue;
                }
                st.box_pairs += 1;
                // Both directions in one sweep over pairs.
                for ti in t_range.clone() {
                    let (tx, ty, tz, tq) = (bp.x[ti], bp.y[ti], bp.z[ti], bp.q[ti]);
                    let mut acc = 0.0;
                    for si in s_range.clone() {
                        let dx = tx - bp.x[si];
                        let dy = ty - bp.y[si];
                        let dz = tz - bp.z[si];
                        let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz).sqrt();
                        acc += bp.q[si] * inv_r;
                        out[si] += tq * inv_r;
                    }
                    out[ti] += acc;
                    st.pair_interactions += s_range.len() as u64;
                }
            }
        }
    }
    st.flops = st.pair_interactions * PAIR_FLOPS;
    (out, st)
}

/// Edge length (in leaf boxes) of the blocks the colored schedule tiles the
/// leaf grid into. Must satisfy `BLOCK ≥ 2·d` so that the symmetric write
/// region of a block, `[−d, BLOCK−1+d]` per axis, spans at most `2·BLOCK`
/// boxes — the distance between same-color block origins on any axis they
/// differ in.
pub const COLOR_BLOCK: u32 = 4;

/// The 8-color block schedule for the conflict-free symmetric near field.
///
/// Leaf boxes are tiled into `COLOR_BLOCK`³ blocks; a block's color is the
/// 2×2×2 parity of its block coordinates. Two distinct blocks of the same
/// color differ by a multiple of `2·COLOR_BLOCK = 8` leaf boxes on every
/// axis they differ in, while a block's symmetric sweep only writes boxes
/// within `x ∈ [ox, ox+5]`, `y/z ∈ [oy−2, oy+5]` of its origin at
/// two-separation (the lexicographically-positive half-offsets have
/// `dx ∈ [0,2]`, `dy, dz ∈ [−2,2]`). Spans of 6 and 8 boxes never reach a
/// neighbour 8 away, so all writes within one color phase are disjoint.
///
/// Note the parity coloring must be applied to *blocks*, not individual
/// boxes: per-box 2×2×2 parity is unsound at two-separation (two same-color
/// boxes 4 apart both write the box between them, e.g. via offsets
/// `[1, 2, c]` and `[1, −2, c]`).
#[derive(Debug, Clone)]
pub struct ColorSchedule {
    /// Hierarchy level this schedule was built for.
    pub level: u32,
    /// Per color: origins (in leaf-box coordinates) of its blocks.
    pub colors: [Vec<[u32; 3]>; 8],
}

impl ColorSchedule {
    /// Build the schedule for all leaf boxes of `level`.
    pub fn build(level: u32) -> Self {
        let side = 1u32 << level;
        let nb = side.div_ceil(COLOR_BLOCK);
        let mut colors: [Vec<[u32; 3]>; 8] = Default::default();
        for bz in 0..nb {
            for by in 0..nb {
                for bx in 0..nb {
                    let color = ((bx & 1) | ((by & 1) << 1) | ((bz & 1) << 2)) as usize;
                    colors[color].push([bx * COLOR_BLOCK, by * COLOR_BLOCK, bz * COLOR_BLOCK]);
                }
            }
        }
        ColorSchedule { level, colors }
    }

    /// Total number of blocks across all colors.
    pub fn n_blocks(&self) -> usize {
        self.colors.iter().map(Vec::len).sum()
    }
}

/// Shared output buffer for the colored sweep. Tasks of one color phase
/// carve out disjoint sub-slices (guaranteed by the schedule), so handing
/// each task raw-pointer-derived `&mut [f64]` views is sound.
struct SharedOut(*mut f64);

// SAFETY: the pointer is only dereferenced through `slice`, whose caller
// contract guarantees disjoint ranges across concurrently running tasks.
unsafe impl Sync for SharedOut {}
// SAFETY: as above — the wrapper carries no thread-affine state.
unsafe impl Send for SharedOut {}

impl SharedOut {
    /// # Safety
    /// `range` must be in bounds and not concurrently viewed by any other
    /// task.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.0.add(range.start), range.len())
    }
}

#[inline]
fn add_stats(a: NearFieldStats, b: NearFieldStats) -> NearFieldStats {
    NearFieldStats {
        pair_interactions: a.pair_interactions + b.pair_interactions,
        box_pairs: a.box_pairs + b.box_pairs,
        flops: 0,
    }
}

/// Symmetric near field with Newton's-third-law pair savings, parallelized
/// via the 8-color block schedule. Adds into `out` (sorted particle order)
/// and reports the same third-law-halved pair counts as the sequential
/// [`near_field_symmetric`] sweep, so Fig.-10-style experiments read
/// consistently off either path.
pub fn near_field_symmetric_colored(
    bp: &BinnedParticles,
    sep: Separation,
    schedule: &ColorSchedule,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    near_field_symmetric_colored_with(Kernel::detect(), bp, sep, schedule, parallel, eps, out)
}

/// [`near_field_symmetric_colored`] with an explicit kernel choice.
#[allow(clippy::too_many_arguments)]
pub fn near_field_symmetric_colored_with(
    kernel: Kernel,
    bp: &BinnedParticles,
    sep: Separation,
    schedule: &ColorSchedule,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    assert_eq!(out.len(), bp.len());
    assert_eq!(
        schedule.level, bp.level,
        "schedule level {} does not match particle level {}",
        schedule.level, bp.level
    );
    debug_assert!(sep.d() as u32 * 2 <= COLOR_BLOCK);
    let eps2 = eps * eps;
    let level = bp.level;
    let side = 1u32 << level;
    let half: Vec<[i32; 3]> = near_field_offsets(sep)
        .into_iter()
        .filter(|o| *o > [0, 0, 0])
        .collect();

    let shared = SharedOut(out.as_mut_ptr());
    let shared = &shared;

    let process_block = |origin: &[u32; 3]| -> NearFieldStats {
        let mut st = NearFieldStats::default();
        let [ox, oy, oz] = *origin;
        for z in oz..(oz + COLOR_BLOCK).min(side) {
            for y in oy..(oy + COLOR_BLOCK).min(side) {
                for x in ox..(ox + COLOR_BLOCK).min(side) {
                    let t = BoxCoord { level, x, y, z };
                    let t_range = bp.range(t.index());
                    if t_range.is_empty() {
                        continue;
                    }
                    // SAFETY: within one color phase no other block's task
                    // writes any box this task touches (see ColorSchedule).
                    let t_out = unsafe { shared.slice(t_range.clone()) };
                    st.pair_interactions += self_box_potential(bp, t_range.clone(), eps2, t_out);
                    st.box_pairs += 1;
                    for &d in &half {
                        let Some(s) = t.offset(d) else { continue };
                        let s_range = bp.range(s.index());
                        if s_range.is_empty() {
                            continue;
                        }
                        // SAFETY: as above; s is within the block's write
                        // region, disjoint from every same-color block's.
                        let s_out = unsafe { shared.slice(s_range.clone()) };
                        let xs = &bp.x[s_range.clone()];
                        let ys = &bp.y[s_range.clone()];
                        let zs = &bp.z[s_range.clone()];
                        let qs = &bp.q[s_range.clone()];
                        for (i, ti) in t_range.clone().enumerate() {
                            t_out[i] += pair_exchange_with(
                                kernel, bp.x[ti], bp.y[ti], bp.z[ti], bp.q[ti], eps2, xs, ys, zs,
                                qs, s_out,
                            );
                            st.pair_interactions += s_range.len() as u64;
                        }
                        st.box_pairs += 1;
                    }
                }
            }
        }
        st
    };

    // Colors run as ordered sequential phases; blocks within a color are
    // conflict-free and run in parallel.
    let mut total = NearFieldStats::default();
    for color in &schedule.colors {
        // det: integer-counter reduction; block writes are conflict-free
        // within a color.
        let st = if parallel {
            color
                .par_iter()
                .map(process_block)
                .reduce(NearFieldStats::default, add_stats)
        } else {
            color
                .iter()
                .map(process_block)
                .fold(NearFieldStats::default(), add_stats)
        };
        total = add_stats(total, st);
    }
    total.flops = total.pair_interactions * PAIR_FLOPS;
    total
}

/// Near-field potentials via the paper's travelling-accumulator sweep
/// (shared-memory emulation). The canonical [`fmm_machine::TravelPath`]
/// visits each lexicographically-positive half-offset once; at every step
/// each target box exchanges with the box `cum` away, gathering into `out`
/// and scattering into a separate travelling accumulator array, which is
/// added back at the end (the "return shifts"). Steps are ordered; within
/// a step each out/accumulator element is written by exactly one box, so
/// the parallel and sequential forms — and the message-passing executor,
/// which runs the identical arithmetic per worker — are bitwise identical.
/// Reports the same third-law-halved counts as [`near_field_symmetric`].
pub fn near_field_travelling(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    near_field_travelling_with(Kernel::detect(), bp, sep, parallel, eps, out)
}

/// [`near_field_travelling`] with an explicit kernel choice.
pub fn near_field_travelling_with(
    kernel: Kernel,
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    assert_eq!(out.len(), bp.len());
    let eps2 = eps * eps;
    let level = bp.level;
    let n_boxes = bp.binning.starts.len() - 1;
    let path = fmm_machine::TravelPath::new(sep.d());
    let mut acc = vec![0.0; bp.len()];

    // Self interactions, symmetric within each box.
    let mut self_slices = per_box_slices(bp, out);
    let self_work = |(b, o): (usize, &mut &mut [f64])| -> NearFieldStats {
        let t_range = bp.range(b);
        if t_range.is_empty() {
            return NearFieldStats::default();
        }
        NearFieldStats {
            pair_interactions: self_box_potential(bp, t_range, eps2, o),
            box_pairs: 1,
            flops: 0,
        }
    };
    // det: integer-counter reduction over disjoint per-box slices.
    let mut total = if parallel {
        self_slices
            .par_iter_mut()
            .enumerate()
            .map(self_work)
            .reduce(NearFieldStats::default, add_stats)
    } else {
        self_slices
            .iter_mut()
            .enumerate()
            .map(self_work)
            .fold(NearFieldStats::default(), add_stats)
    };

    // The travelling sweep: one ordered pass per unit step. The boxes of a
    // step are independent — box t writes out[t] and acc[t + cum], both
    // bijections of t — so they may run in parallel without changing bits.
    let out_shared = SharedOut(out.as_mut_ptr());
    let out_shared = &out_shared;
    let acc_shared = SharedOut(acc.as_mut_ptr());
    let acc_shared = &acc_shared;
    let boxes: Vec<usize> = (0..n_boxes).collect();
    for step in &path.steps {
        let cum = step.cum;
        let step_work = |&b: &usize| -> NearFieldStats {
            let t = BoxCoord::from_index(level, b);
            let t_range = bp.range(b);
            if t_range.is_empty() {
                return NearFieldStats::default();
            }
            let Some(s) = t.offset(cum) else {
                return NearFieldStats::default();
            };
            let s_range = bp.range(s.index());
            if s_range.is_empty() {
                return NearFieldStats::default();
            }
            // SAFETY: t ↦ t_range and t ↦ s_range are injective over the
            // boxes of one step, and `out`/`acc` are distinct arrays.
            let t_out = unsafe { out_shared.slice(t_range.clone()) };
            // SAFETY: same disjointness argument as `t_out`, on `acc`.
            let s_acc = unsafe { acc_shared.slice(s_range.clone()) };
            let xs = &bp.x[s_range.clone()];
            let ys = &bp.y[s_range.clone()];
            let zs = &bp.z[s_range.clone()];
            let qs = &bp.q[s_range.clone()];
            let mut pairs = 0u64;
            for (i, ti) in t_range.clone().enumerate() {
                t_out[i] += pair_exchange_with(
                    kernel, bp.x[ti], bp.y[ti], bp.z[ti], bp.q[ti], eps2, xs, ys, zs, qs, s_acc,
                );
                pairs += s_range.len() as u64;
            }
            NearFieldStats {
                pair_interactions: pairs,
                box_pairs: 1,
                flops: 0,
            }
        };
        // det: integer-counter reduction; each box owns its accumulators.
        let st = if parallel {
            boxes
                .par_iter()
                .map(step_work)
                .reduce(NearFieldStats::default, add_stats)
        } else {
            boxes
                .iter()
                .map(step_work)
                .fold(NearFieldStats::default(), add_stats)
        };
        total = add_stats(total, st);
    }

    // Return shifts: every accumulator goes home and is added once.
    for (o, a) in out.iter_mut().zip(&acc) {
        *o += *a;
    }
    total.flops = total.pair_interactions * PAIR_FLOPS;
    total
}

/// Multi-instance travelling near field: `R` same-depth particle sets
/// sweep the canonical path together. The geometry — the path itself,
/// each step's `t ↦ t + cum` box map and its domain clipping — depends
/// only on the hierarchy depth and separation, so the batched form
/// computes it once per (step, box) and loops instances innermost,
/// instead of `R` full sweeps re-deriving it. For small requests the
/// sweep is geometry-bound (tens of steps × every box, a few particles
/// each), so this is where batching a serving workload actually pays.
///
/// Per instance the arithmetic replays [`near_field_travelling_with`]
/// exactly: same self pass in box order, same ordered steps, same box
/// order within a step, same gather/scatter into a per-instance
/// accumulator, same return shift — so each instance's output is bitwise
/// identical to its solo sweep (sequential or parallel; the solo forms
/// are themselves bitwise equal). Runs sequentially: the instance loop
/// already aggregates the work the solo form would spread over threads.
///
/// `outs[i]` is instance `i`'s potentials in **sorted** particle order;
/// counters are summed over the batch.
pub fn near_field_travelling_batch_with(
    kernel: Kernel,
    bps: &[BinnedParticles],
    sep: Separation,
    eps: f64,
    outs: &mut [Vec<f64>],
) -> NearFieldStats {
    assert_eq!(bps.len(), outs.len());
    let Some(first) = bps.first() else {
        return NearFieldStats::default();
    };
    let eps2 = eps * eps;
    let level = first.level;
    let n_boxes = first.binning.starts.len() - 1;
    for (bp, out) in bps.iter().zip(outs.iter()) {
        assert_eq!(bp.level, level, "batched near field needs one depth");
        assert_eq!(out.len(), bp.len());
    }
    let path = fmm_machine::TravelPath::new(sep.d());
    let mut accs: Vec<Vec<f64>> = bps.iter().map(|bp| vec![0.0; bp.len()]).collect();
    let mut total = NearFieldStats::default();

    // Self interactions: box-outer, instance-inner (per instance this is
    // the solo sweep's ascending box order).
    for b in 0..n_boxes {
        for (bp, out) in bps.iter().zip(outs.iter_mut()) {
            let t_range = bp.range(b);
            if t_range.is_empty() {
                continue;
            }
            total.pair_interactions +=
                self_box_potential(bp, t_range.clone(), eps2, &mut out[t_range]);
            total.box_pairs += 1;
        }
    }

    // The travelling sweep over the shared path: each step's source map is
    // resolved once per box and reused by every instance.
    let coords: Vec<BoxCoord> = (0..n_boxes)
        .map(|b| BoxCoord::from_index(level, b))
        .collect();
    for step in &path.steps {
        let cum = step.cum;
        for (b, t) in coords.iter().enumerate() {
            let Some(s) = t.offset(cum) else { continue };
            let s_idx = s.index();
            for ((bp, out), acc) in bps.iter().zip(outs.iter_mut()).zip(accs.iter_mut()) {
                let t_range = bp.range(b);
                if t_range.is_empty() {
                    continue;
                }
                let s_range = bp.range(s_idx);
                if s_range.is_empty() {
                    continue;
                }
                let t_out = &mut out[t_range.clone()];
                let s_acc = &mut acc[s_range.clone()];
                let xs = &bp.x[s_range.clone()];
                let ys = &bp.y[s_range.clone()];
                let zs = &bp.z[s_range.clone()];
                let qs = &bp.q[s_range.clone()];
                for (i, ti) in t_range.clone().enumerate() {
                    t_out[i] += pair_exchange_with(
                        kernel, bp.x[ti], bp.y[ti], bp.z[ti], bp.q[ti], eps2, xs, ys, zs, qs, s_acc,
                    );
                    total.pair_interactions += s_range.len() as u64;
                }
                total.box_pairs += 1;
            }
        }
    }

    // Return shifts, per instance.
    for (out, acc) in outs.iter_mut().zip(&accs) {
        for (o, a) in out.iter_mut().zip(acc) {
            *o += *a;
        }
    }
    total.flops = total.pair_interactions * PAIR_FLOPS;
    total
}

/// Target-centric near-field potentials **and** fields (−∇Φ). Outputs are
/// in sorted particle order.
pub fn near_field_forces(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    pot: &mut [f64],
    field: &mut [[f64; 3]],
) -> NearFieldStats {
    near_field_forces_softened(bp, sep, parallel, 0.0, pot, field)
}

/// [`near_field_forces`] with Plummer softening (see
/// [`near_field_potentials_softened`]).
pub fn near_field_forces_softened(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    pot: &mut [f64],
    field: &mut [[f64; 3]],
) -> NearFieldStats {
    let eps2 = eps * eps;
    assert_eq!(pot.len(), bp.len());
    assert_eq!(field.len(), bp.len());
    let offsets = near_field_offsets(sep);
    let mut pot_slices = per_box_slices(bp, pot);
    // split field the same way
    let n_boxes = bp.binning.starts.len() - 1;
    let mut fbuf: &mut [[f64; 3]] = field;
    let mut field_slices = Vec::with_capacity(n_boxes);
    for b in 0..n_boxes {
        let (head, tail) = fbuf.split_at_mut(bp.binning.count(b));
        field_slices.push(head);
        fbuf = tail;
    }

    let work = |(b, (po, fo)): (usize, (&mut &mut [f64], &mut &mut [[f64; 3]]))| -> u64 {
        near_field_forces_box(bp, b, &offsets, eps2, po, fo)
    };

    // det: integer pair-count reduction; floats live in disjoint slices.
    let pairs: u64 = if parallel {
        pot_slices
            .par_iter_mut()
            .zip(field_slices.par_iter_mut())
            .enumerate()
            .map(work)
            .sum()
    } else {
        pot_slices
            .iter_mut()
            .zip(field_slices.iter_mut())
            .enumerate()
            .map(work)
            .sum()
    };
    NearFieldStats {
        pair_interactions: pairs,
        box_pairs: 0,
        flops: pairs * PAIR_FORCE_FLOPS,
    }
}

/// Target-centric potential + field accumulation for the particles of one
/// box. `po`/`fo` are the per-box output slices of box `b`; `offsets` is
/// the full near-field offset list. Public because the SPMD executor must
/// run this exact loop per *owned* box over its halo-extended binning to
/// stay bitwise identical to the shared-memory path.
pub fn near_field_forces_box(
    bp: &BinnedParticles,
    b: usize,
    offsets: &[[i32; 3]],
    eps2: f64,
    po: &mut [f64],
    fo: &mut [[f64; 3]],
) -> u64 {
    let t = BoxCoord::from_index(bp.level, b);
    let t_range = bp.range(b);
    let mut pairs = 0u64;
    for (idx, ti) in t_range.clone().enumerate() {
        let (tx, ty, tz) = (bp.x[ti], bp.y[ti], bp.z[ti]);
        let mut p_acc = 0.0;
        let mut f_acc = [0.0; 3];
        let mut visit = |s_range: std::ops::Range<usize>, skip: usize| {
            for si in s_range {
                if si == skip {
                    continue;
                }
                let dx = tx - bp.x[si];
                let dy = ty - bp.y[si];
                let dz = tz - bp.z[si];
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let inv_r = 1.0 / r2.sqrt();
                let qr = bp.q[si] * inv_r;
                p_acc += qr;
                // −∇(q/r) = q (x_t − x_s) / r³
                let qr3 = qr * inv_r * inv_r;
                f_acc[0] += qr3 * dx;
                f_acc[1] += qr3 * dy;
                f_acc[2] += qr3 * dz;
            }
        };
        visit(t_range.clone(), ti);
        pairs += (t_range.len() - 1) as u64;
        for &d in offsets {
            if let Some(s) = t.offset(d) {
                let s_range = bp.range(s.index());
                pairs += s_range.len() as u64;
                visit(s_range, usize::MAX);
            }
        }
        po[idx] += p_acc;
        for a in 0..3 {
            fo[idx][a] += f_acc[a];
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tree::Domain;

    fn pseudo_system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
        let q: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
        (pts, q)
    }

    /// Reference: all-pairs within the near-field neighbourhood, brute
    /// force over boxes.
    #[allow(clippy::needless_range_loop)]
    fn reference(bp: &BinnedParticles, sep: Separation) -> Vec<f64> {
        let mut out = vec![0.0; bp.len()];
        let d = sep.d();
        let level = bp.level;
        for ti in 0..bp.len() {
            let tb = bp.domain.locate([bp.x[ti], bp.y[ti], bp.z[ti]], level);
            for si in 0..bp.len() {
                if si == ti {
                    continue;
                }
                let sb = bp.domain.locate([bp.x[si], bp.y[si], bp.z[si]], level);
                let near = (tb.x as i32 - sb.x as i32).abs() <= d
                    && (tb.y as i32 - sb.y as i32).abs() <= d
                    && (tb.z as i32 - sb.z as i32).abs() <= d;
                if near {
                    let dx = bp.x[ti] - bp.x[si];
                    let dy = bp.y[ti] - bp.y[si];
                    let dz = bp.z[ti] - bp.z[si];
                    out[ti] += bp.q[si] / (dx * dx + dy * dy + dz * dz).sqrt();
                }
            }
        }
        out
    }

    fn build(n: usize, level: u32, seed: u64) -> BinnedParticles {
        let (pts, q) = pseudo_system(n, seed);
        BinnedParticles::build(&pts, &q, Domain::unit(), level)
    }

    #[test]
    fn target_centric_matches_reference() {
        let bp = build(300, 2, 11);
        let mut out = vec![0.0; bp.len()];
        near_field_potentials(&bp, Separation::Two, false, &mut out);
        let r = reference(&bp, Separation::Two);
        for (a, b) in out.iter().zip(&r) {
            assert!((a - b).abs() < 1e-10, "{} vs {}", a, b);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let bp = build(500, 2, 13);
        let mut seq = vec![0.0; bp.len()];
        let mut par = vec![0.0; bp.len()];
        near_field_potentials(&bp, Separation::Two, false, &mut seq);
        near_field_potentials(&bp, Separation::Two, true, &mut par);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_matches_target_centric() {
        for sep in [Separation::One, Separation::Two] {
            let bp = build(400, 2, 17);
            let mut tc = vec![0.0; bp.len()];
            let st_tc = near_field_potentials(&bp, sep, false, &mut tc);
            let (sym, st_sym) = near_field_symmetric(&bp, sep);
            for (a, b) in tc.iter().zip(&sym) {
                assert!((a - b).abs() < 1e-10);
            }
            // Newton's third law halves the pair count (self-box pairs are
            // already symmetric in both).
            assert!(st_sym.pair_interactions < st_tc.pair_interactions);
            let cross_tc = st_tc.pair_interactions;
            let cross_sym = st_sym.pair_interactions;
            // Within rounding, sym ≈ (tc + self_pairs)/2; just require a
            // substantial reduction.
            assert!(
                (cross_sym as f64) < 0.65 * cross_tc as f64,
                "sym {} vs tc {}",
                cross_sym,
                cross_tc
            );
        }
    }

    #[test]
    fn forces_match_finite_difference_of_potential() {
        let bp = build(200, 2, 19);
        let mut pot = vec![0.0; bp.len()];
        let mut field = vec![[0.0; 3]; bp.len()];
        near_field_forces(&bp, Separation::Two, false, &mut pot, &mut field);
        // Check potential part agrees with the potential-only kernel.
        let mut pot2 = vec![0.0; bp.len()];
        near_field_potentials(&bp, Separation::Two, false, &mut pot2);
        for (a, b) in pot.iter().zip(&pot2) {
            assert!((a - b).abs() < 1e-10);
        }
        // Spot-check the field of the first sorted particle against a
        // finite difference of the near-field potential at its position.
        let i = 0usize;
        let h = 1e-6;
        let eval_at = |p: [f64; 3]| -> f64 {
            // Potential at point p due to all near-field particles of the
            // box containing particle i (kept fixed), excluding i itself.
            let tb = bp.domain.locate([bp.x[i], bp.y[i], bp.z[i]], bp.level);
            let d = 2;
            let mut acc = 0.0;
            for si in 0..bp.len() {
                if si == i {
                    continue;
                }
                let sb = bp.domain.locate([bp.x[si], bp.y[si], bp.z[si]], bp.level);
                let near = (tb.x as i32 - sb.x as i32).abs() <= d
                    && (tb.y as i32 - sb.y as i32).abs() <= d
                    && (tb.z as i32 - sb.z as i32).abs() <= d;
                if near {
                    let dx = p[0] - bp.x[si];
                    let dy = p[1] - bp.y[si];
                    let dz = p[2] - bp.z[si];
                    acc += bp.q[si] / (dx * dx + dy * dy + dz * dz).sqrt();
                }
            }
            acc
        };
        let p0 = [bp.x[i], bp.y[i], bp.z[i]];
        for a in 0..3 {
            let mut pp = p0;
            pp[a] += h;
            let mut pm = p0;
            pm[a] -= h;
            let fd = -(eval_at(pp) - eval_at(pm)) / (2.0 * h);
            assert!(
                (fd - field[i][a]).abs() < 1e-4 * (1.0 + fd.abs()),
                "axis {}: fd {} vs {}",
                a,
                fd,
                field[i][a]
            );
        }
    }

    #[test]
    fn colored_symmetric_matches_sequential_symmetric() {
        // Level 3 (8³ = 512 boxes, 2×2×2 blocks) exercises multi-color
        // schedules; level 2 exercises the single-block degenerate case.
        for (n, level) in [(400usize, 2u32), (3000, 3)] {
            for sep in [Separation::One, Separation::Two] {
                let bp = build(n, level, 31);
                let (seq, st_seq) = near_field_symmetric(&bp, sep);
                let schedule = ColorSchedule::build(level);
                for parallel in [false, true] {
                    let mut col = vec![0.0; bp.len()];
                    let st_col =
                        near_field_symmetric_colored(&bp, sep, &schedule, parallel, 0.0, &mut col);
                    for (a, b) in seq.iter().zip(&col) {
                        assert!(
                            (a - b).abs() < 1e-12 * (1.0 + a.abs()),
                            "n={} level={} {:?} par={}: {} vs {}",
                            n,
                            level,
                            sep,
                            parallel,
                            a,
                            b
                        );
                    }
                    // Third-law-halved counters must agree exactly with the
                    // sequential sweep (satellite: stats consistency).
                    assert_eq!(st_col.pair_interactions, st_seq.pair_interactions);
                    assert_eq!(st_col.box_pairs, st_seq.box_pairs);
                    assert_eq!(st_col.flops, st_seq.flops);
                }
            }
        }
    }

    #[test]
    fn colored_symmetric_agrees_across_kernels() {
        // Every dispatched kernel family must reproduce the sequential
        // scalar oracle (counters exactly, values to rounding).
        let bp = build(2000, 3, 41);
        let (seq, st_seq) = near_field_symmetric(&bp, Separation::Two);
        let schedule = ColorSchedule::build(3);
        for kernel in Kernel::available() {
            let mut col = vec![0.0; bp.len()];
            let st = near_field_symmetric_colored_with(
                kernel,
                &bp,
                Separation::Two,
                &schedule,
                true,
                0.0,
                &mut col,
            );
            for (a, b) in seq.iter().zip(&col) {
                assert!(
                    (a - b).abs() < 1e-12 * (1.0 + a.abs()),
                    "{:?}: {} vs {}",
                    kernel,
                    a,
                    b
                );
            }
            assert_eq!(st.pair_interactions, st_seq.pair_interactions);
            assert_eq!(st.box_pairs, st_seq.box_pairs);

            let mut trav = vec![0.0; bp.len()];
            near_field_travelling_with(kernel, &bp, Separation::Two, true, 0.0, &mut trav);
            for (a, b) in seq.iter().zip(&trav) {
                assert!(
                    (a - b).abs() < 1e-12 * (1.0 + a.abs()),
                    "travelling {:?}",
                    kernel
                );
            }
        }
    }

    #[test]
    fn colored_schedule_covers_all_blocks_once() {
        for level in 1..=4u32 {
            let schedule = ColorSchedule::build(level);
            let side = 1u32 << level;
            let nb = side.div_ceil(COLOR_BLOCK);
            assert_eq!(schedule.n_blocks(), (nb * nb * nb) as usize);
            let mut seen = std::collections::HashSet::new();
            for color in &schedule.colors {
                for o in color {
                    assert!(seen.insert(*o), "block {:?} scheduled twice", o);
                    assert!(o.iter().all(|&c| c < side));
                }
            }
        }
    }

    #[test]
    fn colored_symmetric_softened_matches_target_centric_softened() {
        let bp = build(600, 2, 37);
        let eps = 0.05;
        let mut tc = vec![0.0; bp.len()];
        near_field_potentials_softened(&bp, Separation::Two, false, eps, &mut tc);
        let schedule = ColorSchedule::build(2);
        let mut col = vec![0.0; bp.len()];
        near_field_symmetric_colored(&bp, Separation::Two, &schedule, true, eps, &mut col);
        for (a, b) in tc.iter().zip(&col) {
            assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()), "{} vs {}", a, b);
        }
    }

    #[test]
    fn one_separation_touches_fewer_pairs() {
        let bp = build(600, 2, 23);
        let mut o1 = vec![0.0; bp.len()];
        let mut o2 = vec![0.0; bp.len()];
        let s1 = near_field_potentials(&bp, Separation::One, false, &mut o1);
        let s2 = near_field_potentials(&bp, Separation::Two, false, &mut o2);
        assert!(s1.pair_interactions < s2.pair_interactions);
        assert!(s1.box_pairs < s2.box_pairs);
    }

    #[test]
    fn empty_boxes_handled() {
        // Few particles at deep level: most boxes empty.
        let bp = build(10, 3, 29);
        let mut out = vec![0.0; bp.len()];
        let st = near_field_potentials(&bp, Separation::Two, false, &mut out);
        assert!(st.pair_interactions <= 90);
    }
}
