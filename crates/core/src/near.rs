//! Near-field direct evaluation (§3.4).
//!
//! At the optimal hierarchy depth the direct evaluation in the near field
//! accounts for about half of all arithmetic, so its efficiency is crucial.
//! The particle–particle interactions are structured as neighbour box–box
//! interactions over the d-separation neighbourhood (124 neighbours for
//! two-separation); exploiting Newton's third law halves that to 62
//! box–box interactions (the paper's Fig. 10 traversal). Both forms are
//! provided: the symmetric one (sequential; used for the flop-count
//! experiments and as a reference) and a target-centric one that
//! parallelizes over target boxes without write conflicts.

use crate::particles::BinnedParticles;
use fmm_tree::{near_field_offsets, BoxCoord, Separation};
use rayon::prelude::*;

/// Flops charged per pairwise potential interaction (3 subs, 3 mults, 2
/// adds, rsqrt, multiply–accumulate — the conventional count used when
/// comparing N-body codes).
pub const PAIR_FLOPS: u64 = 10;
/// Flops per pairwise potential+field interaction.
pub const PAIR_FORCE_FLOPS: u64 = 20;

/// Counters from a near-field sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NearFieldStats {
    /// Particle pair interactions evaluated (symmetric pairs counted
    /// once).
    pub pair_interactions: u64,
    /// Box–box interactions processed (self-box counted once).
    pub box_pairs: u64,
    /// Flops charged.
    pub flops: u64,
}

/// Accumulate potentials of particles in `t_range` due to particles in
/// `s_range` (one direction).
#[inline]
fn box_pair_potential(
    bp: &BinnedParticles,
    t_range: std::ops::Range<usize>,
    s_range: std::ops::Range<usize>,
    eps2: f64,
    out: &mut [f64],
) -> u64 {
    let mut pairs = 0u64;
    for (ti, o) in t_range.clone().zip(out.iter_mut()) {
        let (tx, ty, tz) = (bp.x[ti], bp.y[ti], bp.z[ti]);
        let mut acc = 0.0;
        for si in s_range.clone() {
            let dx = tx - bp.x[si];
            let dy = ty - bp.y[si];
            let dz = tz - bp.z[si];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            acc += bp.q[si] / r2.sqrt();
        }
        pairs += s_range.len() as u64;
        *o += acc;
    }
    pairs
}

/// Potentials within one box, pairwise symmetric, excluding self terms.
#[inline]
fn self_box_potential(
    bp: &BinnedParticles,
    range: std::ops::Range<usize>,
    eps2: f64,
    out: &mut [f64],
) -> u64 {
    let n = range.len();
    let base = range.start;
    let mut pairs = 0u64;
    for a in 0..n {
        let ia = base + a;
        let (xa, ya, za, qa) = (bp.x[ia], bp.y[ia], bp.z[ia], bp.q[ia]);
        let mut acc = 0.0;
        for b in (a + 1)..n {
            let ib = base + b;
            let dx = xa - bp.x[ib];
            let dy = ya - bp.y[ib];
            let dz = za - bp.z[ib];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            acc += bp.q[ib] * inv_r;
            out[b] += qa * inv_r;
            pairs += 1;
        }
        out[a] += acc;
    }
    pairs
}

/// Split a buffer into per-box mutable slices following the binning CSR.
fn per_box_slices<'a>(bp: &BinnedParticles, mut buf: &'a mut [f64]) -> Vec<&'a mut [f64]> {
    let n_boxes = bp.binning.starts.len() - 1;
    let mut out = Vec::with_capacity(n_boxes);
    let mut consumed = 0usize;
    for b in 0..n_boxes {
        let len = bp.binning.count(b);
        let (head, tail) = buf.split_at_mut(len);
        out.push(head);
        buf = tail;
        consumed += len;
    }
    debug_assert_eq!(consumed, bp.len());
    out
}

/// Target-centric near field: every target box accumulates from itself and
/// all d-separation neighbours. `out` is in **sorted** particle order.
/// Parallelizes over target boxes with no write conflicts.
pub fn near_field_potentials(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    out: &mut [f64],
) -> NearFieldStats {
    near_field_potentials_softened(bp, sep, parallel, 0.0, out)
}

/// [`near_field_potentials`] with Plummer softening: the pairwise kernel
/// becomes q/√(r² + ε²). Softening only touches the near field — with
/// ε well below the leaf box side the far-field approximations are
/// unaffected (their sources sit at distance ≥ (d+1−ρ)·side, so the
/// relative perturbation is O(ε²/r²)).
pub fn near_field_potentials_softened(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    out: &mut [f64],
) -> NearFieldStats {
    let eps2 = eps * eps;
    assert_eq!(out.len(), bp.len());
    let offsets = near_field_offsets(sep);
    let level = bp.level;
    let slices = per_box_slices(bp, out);

    let work = |(b, o): (usize, &mut &mut [f64])| -> NearFieldStats {
        let t = BoxCoord::from_index(level, b);
        let t_range = bp.range(b);
        let mut st = NearFieldStats::default();
        st.pair_interactions += self_box_potential(bp, t_range.clone(), eps2, o);
        st.box_pairs += 1;
        for &d in &offsets {
            if let Some(s) = t.offset(d) {
                let s_range = bp.range(s.index());
                if !s_range.is_empty() {
                    st.pair_interactions += box_pair_potential(bp, t_range.clone(), s_range, eps2, o);
                    st.box_pairs += 1;
                }
            }
        }
        st
    };

    let mut slices = slices;
    let total: NearFieldStats = if parallel {
        slices
            .par_iter_mut()
            .enumerate()
            .map(work)
            .reduce(NearFieldStats::default, |a, b| NearFieldStats {
                pair_interactions: a.pair_interactions + b.pair_interactions,
                box_pairs: a.box_pairs + b.box_pairs,
                flops: 0,
            })
    } else {
        let mut acc = NearFieldStats::default();
        for item in slices.iter_mut().enumerate() {
            let st = work(item);
            acc.pair_interactions += st.pair_interactions;
            acc.box_pairs += st.box_pairs;
        }
        acc
    };
    NearFieldStats {
        flops: total.pair_interactions * PAIR_FLOPS,
        ..total
    }
}

/// Symmetric near field exploiting Newton's third law: each unordered box
/// pair is visited once (62 of the 124 two-separation neighbours, via the
/// lexicographically-positive half of the offset set), and both boxes'
/// particles are updated. Sequential — the paper's CM version resolves the
/// write conflicts with a travelling accumulator; here the symmetric form
/// exists to measure the ~2× pair reduction (experiment E13) and as a
/// reference result.
pub fn near_field_symmetric(bp: &BinnedParticles, sep: Separation) -> (Vec<f64>, NearFieldStats) {
    let mut out = vec![0.0; bp.len()];
    let level = bp.level;
    let n_boxes = bp.binning.starts.len() - 1;
    let mut st = NearFieldStats::default();
    // Positive half: offsets that are lexicographically greater than zero.
    let half: Vec<[i32; 3]> = near_field_offsets(sep)
        .into_iter()
        .filter(|o| *o > [0, 0, 0])
        .collect();
    debug_assert_eq!(half.len(), sep.near_field_size() / 2);

    for b in 0..n_boxes {
        let t = BoxCoord::from_index(level, b);
        let t_range = bp.range(b);
        if t_range.is_empty() {
            continue;
        }
        // Own box, symmetric.
        {
            let (t0, t1) = (t_range.start, t_range.end);
            let mut local = vec![0.0; t1 - t0];
            st.pair_interactions += self_box_potential(bp, t_range.clone(), 0.0, &mut local);
            st.box_pairs += 1;
            for (i, v) in local.into_iter().enumerate() {
                out[t0 + i] += v;
            }
        }
        for &d in &half {
            if let Some(s) = t.offset(d) {
                let s_range = bp.range(s.index());
                if s_range.is_empty() {
                    continue;
                }
                st.box_pairs += 1;
                // Both directions in one sweep over pairs.
                for ti in t_range.clone() {
                    let (tx, ty, tz, tq) = (bp.x[ti], bp.y[ti], bp.z[ti], bp.q[ti]);
                    let mut acc = 0.0;
                    for si in s_range.clone() {
                        let dx = tx - bp.x[si];
                        let dy = ty - bp.y[si];
                        let dz = tz - bp.z[si];
                        let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz).sqrt();
                        acc += bp.q[si] * inv_r;
                        out[si] += tq * inv_r;
                    }
                    out[ti] += acc;
                    st.pair_interactions += s_range.len() as u64;
                }
            }
        }
    }
    st.flops = st.pair_interactions * PAIR_FLOPS;
    (out, st)
}

/// Target-centric near-field potentials **and** fields (−∇Φ). Outputs are
/// in sorted particle order.
pub fn near_field_forces(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    pot: &mut [f64],
    field: &mut [[f64; 3]],
) -> NearFieldStats {
    near_field_forces_softened(bp, sep, parallel, 0.0, pot, field)
}

/// [`near_field_forces`] with Plummer softening (see
/// [`near_field_potentials_softened`]).
pub fn near_field_forces_softened(
    bp: &BinnedParticles,
    sep: Separation,
    parallel: bool,
    eps: f64,
    pot: &mut [f64],
    field: &mut [[f64; 3]],
) -> NearFieldStats {
    let eps2 = eps * eps;
    assert_eq!(pot.len(), bp.len());
    assert_eq!(field.len(), bp.len());
    let offsets = near_field_offsets(sep);
    let level = bp.level;
    let pot_slices = per_box_slices(bp, pot);
    // split field the same way
    let n_boxes = bp.binning.starts.len() - 1;
    let mut fbuf: &mut [[f64; 3]] = field;
    let mut field_slices = Vec::with_capacity(n_boxes);
    for b in 0..n_boxes {
        let (head, tail) = fbuf.split_at_mut(bp.binning.count(b));
        field_slices.push(head);
        fbuf = tail;
    }

    let work = |(b, (po, fo)): (usize, (&mut &mut [f64], &mut &mut [[f64; 3]]))| -> u64 {
        let t = BoxCoord::from_index(level, b);
        let t_range = bp.range(b);
        let mut pairs = 0u64;
        for (idx, ti) in t_range.clone().enumerate() {
            let (tx, ty, tz) = (bp.x[ti], bp.y[ti], bp.z[ti]);
            let mut p_acc = 0.0;
            let mut f_acc = [0.0; 3];
            let mut visit = |s_range: std::ops::Range<usize>, skip: usize| {
                for si in s_range {
                    if si == skip {
                        continue;
                    }
                    let dx = tx - bp.x[si];
                    let dy = ty - bp.y[si];
                    let dz = tz - bp.z[si];
                    let r2 = dx * dx + dy * dy + dz * dz + eps2;
                    let inv_r = 1.0 / r2.sqrt();
                    let qr = bp.q[si] * inv_r;
                    p_acc += qr;
                    // −∇(q/r) = q (x_t − x_s) / r³
                    let qr3 = qr * inv_r * inv_r;
                    f_acc[0] += qr3 * dx;
                    f_acc[1] += qr3 * dy;
                    f_acc[2] += qr3 * dz;
                }
            };
            visit(t_range.clone(), ti);
            pairs += (t_range.len() - 1) as u64;
            for &d in &offsets {
                if let Some(s) = t.offset(d) {
                    let s_range = bp.range(s.index());
                    pairs += s_range.len() as u64;
                    visit(s_range, usize::MAX);
                }
            }
            po[idx] += p_acc;
            for a in 0..3 {
                fo[idx][a] += f_acc[a];
            }
        }
        pairs
    };

    let mut pot_slices = pot_slices;
    let mut field_slices = field_slices;
    let pairs: u64 = if parallel {
        pot_slices
            .par_iter_mut()
            .zip(field_slices.par_iter_mut())
            .enumerate()
            .map(work)
            .sum()
    } else {
        pot_slices
            .iter_mut()
            .zip(field_slices.iter_mut())
            .enumerate()
            .map(work)
            .sum()
    };
    NearFieldStats {
        pair_interactions: pairs,
        box_pairs: 0,
        flops: pairs * PAIR_FORCE_FLOPS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tree::Domain;

    fn pseudo_system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
        let q: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
        (pts, q)
    }

    /// Reference: all-pairs within the near-field neighbourhood, brute
    /// force over boxes.
    fn reference(bp: &BinnedParticles, sep: Separation) -> Vec<f64> {
        let mut out = vec![0.0; bp.len()];
        let d = sep.d();
        let level = bp.level;
        for ti in 0..bp.len() {
            let tb = bp.domain.locate([bp.x[ti], bp.y[ti], bp.z[ti]], level);
            for si in 0..bp.len() {
                if si == ti {
                    continue;
                }
                let sb = bp.domain.locate([bp.x[si], bp.y[si], bp.z[si]], level);
                let near = (tb.x as i32 - sb.x as i32).abs() <= d
                    && (tb.y as i32 - sb.y as i32).abs() <= d
                    && (tb.z as i32 - sb.z as i32).abs() <= d;
                if near {
                    let dx = bp.x[ti] - bp.x[si];
                    let dy = bp.y[ti] - bp.y[si];
                    let dz = bp.z[ti] - bp.z[si];
                    out[ti] += bp.q[si] / (dx * dx + dy * dy + dz * dz).sqrt();
                }
            }
        }
        out
    }

    fn build(n: usize, level: u32, seed: u64) -> BinnedParticles {
        let (pts, q) = pseudo_system(n, seed);
        BinnedParticles::build(&pts, &q, Domain::unit(), level)
    }

    #[test]
    fn target_centric_matches_reference() {
        let bp = build(300, 2, 11);
        let mut out = vec![0.0; bp.len()];
        near_field_potentials(&bp, Separation::Two, false, &mut out);
        let r = reference(&bp, Separation::Two);
        for (a, b) in out.iter().zip(&r) {
            assert!((a - b).abs() < 1e-10, "{} vs {}", a, b);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let bp = build(500, 2, 13);
        let mut seq = vec![0.0; bp.len()];
        let mut par = vec![0.0; bp.len()];
        near_field_potentials(&bp, Separation::Two, false, &mut seq);
        near_field_potentials(&bp, Separation::Two, true, &mut par);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_matches_target_centric() {
        for sep in [Separation::One, Separation::Two] {
            let bp = build(400, 2, 17);
            let mut tc = vec![0.0; bp.len()];
            let st_tc = near_field_potentials(&bp, sep, false, &mut tc);
            let (sym, st_sym) = near_field_symmetric(&bp, sep);
            for (a, b) in tc.iter().zip(&sym) {
                assert!((a - b).abs() < 1e-10);
            }
            // Newton's third law halves the pair count (self-box pairs are
            // already symmetric in both).
            assert!(st_sym.pair_interactions < st_tc.pair_interactions);
            let cross_tc = st_tc.pair_interactions;
            let cross_sym = st_sym.pair_interactions;
            // Within rounding, sym ≈ (tc + self_pairs)/2; just require a
            // substantial reduction.
            assert!(
                (cross_sym as f64) < 0.65 * cross_tc as f64,
                "sym {} vs tc {}",
                cross_sym,
                cross_tc
            );
        }
    }

    #[test]
    fn forces_match_finite_difference_of_potential() {
        let bp = build(200, 2, 19);
        let mut pot = vec![0.0; bp.len()];
        let mut field = vec![[0.0; 3]; bp.len()];
        near_field_forces(&bp, Separation::Two, false, &mut pot, &mut field);
        // Check potential part agrees with the potential-only kernel.
        let mut pot2 = vec![0.0; bp.len()];
        near_field_potentials(&bp, Separation::Two, false, &mut pot2);
        for (a, b) in pot.iter().zip(&pot2) {
            assert!((a - b).abs() < 1e-10);
        }
        // Spot-check the field of the first sorted particle against a
        // finite difference of the near-field potential at its position.
        let i = 0usize;
        let h = 1e-6;
        let eval_at = |p: [f64; 3]| -> f64 {
            // Potential at point p due to all near-field particles of the
            // box containing particle i (kept fixed), excluding i itself.
            let tb = bp.domain.locate([bp.x[i], bp.y[i], bp.z[i]], bp.level);
            let d = 2;
            let mut acc = 0.0;
            for si in 0..bp.len() {
                if si == i {
                    continue;
                }
                let sb = bp.domain.locate([bp.x[si], bp.y[si], bp.z[si]], bp.level);
                let near = (tb.x as i32 - sb.x as i32).abs() <= d
                    && (tb.y as i32 - sb.y as i32).abs() <= d
                    && (tb.z as i32 - sb.z as i32).abs() <= d;
                if near {
                    let dx = p[0] - bp.x[si];
                    let dy = p[1] - bp.y[si];
                    let dz = p[2] - bp.z[si];
                    acc += bp.q[si] / (dx * dx + dy * dy + dz * dz).sqrt();
                }
            }
            acc
        };
        let p0 = [bp.x[i], bp.y[i], bp.z[i]];
        for a in 0..3 {
            let mut pp = p0;
            pp[a] += h;
            let mut pm = p0;
            pm[a] -= h;
            let fd = -(eval_at(pp) - eval_at(pm)) / (2.0 * h);
            assert!(
                (fd - field[i][a]).abs() < 1e-4 * (1.0 + fd.abs()),
                "axis {}: fd {} vs {}",
                a,
                fd,
                field[i][a]
            );
        }
    }

    #[test]
    fn one_separation_touches_fewer_pairs() {
        let bp = build(600, 2, 23);
        let mut o1 = vec![0.0; bp.len()];
        let mut o2 = vec![0.0; bp.len()];
        let s1 = near_field_potentials(&bp, Separation::One, false, &mut o1);
        let s2 = near_field_potentials(&bp, Separation::Two, false, &mut o2);
        assert!(s1.pair_interactions < s2.pair_interactions);
        assert!(s1.box_pairs < s2.box_pairs);
    }

    #[test]
    fn empty_boxes_handled() {
        // Few particles at deep level: most boxes empty.
        let bp = build(10, 3, 29);
        let mut out = vec![0.0; bp.len()];
        let st = near_field_potentials(&bp, Separation::Two, false, &mut out);
        assert!(st.pair_interactions <= 90);
    }
}
