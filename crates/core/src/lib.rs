//! # fmm-core — Anderson's O(N) hierarchical N-body method
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! data-parallel implementation of Anderson's variant of the fast multipole
//! method. The structure follows the generic hierarchical method of the
//! paper's §2.2:
//!
//! 1. **P2O** — form outer (far-field) sphere approximations for all leaf
//!    boxes from their particles,
//! 2. **Upward pass (T1)** — combine children's outer approximations into
//!    their parent's, level by level,
//! 3. **Downward pass (T2, T3)** — convert interactive-field outer
//!    approximations to inner (local-field) approximations and push parents'
//!    inner approximations down to children,
//! 4. **Far-field evaluation** — evaluate each leaf's inner approximation
//!    at its particles,
//! 5. **Near field** — direct evaluation against the d-separation
//!    neighbourhood.
//!
//! Every translation is a K×K matrix (see [`translations`]); independent
//! translations are aggregated into matrix panels and executed as level-3
//! BLAS via `fmm-linalg`, exactly the paper's central optimization. The
//! data-parallel execution model of the paper (CM Fortran over VUs) maps to
//! rayon parallel iterators over box slabs within each level; levels are
//! processed sequentially as in the paper's upward/downward passes.
//!
//! ## Quick start
//!
//! ```
//! use fmm_core::{Fmm, FmmConfig};
//!
//! // A tiny uniform system.
//! let positions: Vec<[f64; 3]> = (0..512)
//!     .map(|i| {
//!         let f = i as f64 / 512.0;
//!         [f, (f * 7.3) % 1.0, (f * 3.1) % 1.0]
//!     })
//!     .collect();
//! let charges = vec![1.0; positions.len()];
//!
//! let fmm = Fmm::new(FmmConfig::order(5).depth(2)).unwrap();
//! let result = fmm.evaluate(&positions, &charges).unwrap();
//! assert_eq!(result.potentials.len(), positions.len());
//! ```

pub mod batch;
pub mod config;
pub mod driver;
pub mod error;
pub mod field;
pub mod near;
pub mod near32;
pub mod particles;
pub mod plan;
pub mod registry;
pub mod stats;
pub mod translations;
pub mod traversal;

pub use batch::{BatchOutput, BatchRequest};
pub use config::{Balance, DepthPolicy, Executor, Fabric, FmmConfig, Precision, SpmdOptions};
pub use driver::{EvalOutput, Fmm, FmmError};
pub use error::{relative_error_stats, ErrorStats};
pub use near::{
    near_field_potentials, near_field_symmetric, near_field_symmetric_colored,
    near_field_symmetric_colored_with, near_field_travelling, near_field_travelling_with,
    ColorSchedule, NearFieldStats,
};
pub use near32::{near_field_forces_f32, near_field_potentials_f32, ParticlesF32};
pub use plan::TraversalPlan;
pub use registry::{PlanKey, PlanRegistry, RegistryStats};
pub use stats::{Counters, Phase, Profile, SpmdPhase, SpmdReport};
pub use translations::TranslationSet;

/// Re-exported substrate types that appear in the public API.
pub use fmm_linalg::Kernel;
pub use fmm_sphere::{SphereRule, Vec3};
pub use fmm_tree::{Domain, Separation};
