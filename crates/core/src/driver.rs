//! The end-to-end FMM driver: the five steps of the paper's generic
//! hierarchical method, wired together with binning, translation matrices
//! and per-phase profiling.

use crate::config::{Executor, FmmConfig, Precision};
use crate::field::FieldHierarchy;
use crate::near::{near_field_forces_softened, near_field_travelling_with, NearFieldStats};
use crate::near32::{near_field_forces_f32, near_field_potentials_f32};
use crate::particles::BinnedParticles;
use crate::plan::TraversalPlan;
use crate::registry::{PlanKey, PlanRegistry};
use crate::stats::{Phase, Profile, SpmdReport};
use crate::translations::TranslationSet;
use crate::traversal::{
    downward_level, downward_level_fused, downward_pass, fused_p2o_upward_leaf, upward_level,
    upward_pass, Aggregation, TraversalFlops,
};
use fmm_sphere::{inner_kernel_row, inner_kernel_row_grad, norm, SphereRule};
use fmm_tree::{BoxCoord, Domain, Hierarchy};
use rayon::prelude::*;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors from building or running an [`Fmm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmmError {
    /// Configuration failed validation.
    InvalidConfig(String),
    /// Input arrays are inconsistent or empty.
    BadInput(String),
}

impl fmt::Display for FmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmmError::InvalidConfig(s) => write!(f, "invalid configuration: {}", s),
            FmmError::BadInput(s) => write!(f, "bad input: {}", s),
        }
    }
}

impl std::error::Error for FmmError {}

/// Result of one evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// Potential at every input particle (original order).
    pub potentials: Vec<f64>,
    /// Field −∇Φ at every particle, when requested.
    pub fields: Option<Vec<[f64; 3]>>,
    /// Per-phase timing and flops.
    pub profile: Profile,
    /// Hierarchy depth used.
    pub depth: u32,
    /// Near-field counters.
    pub near_stats: NearFieldStats,
    /// Traversal flop counters.
    pub traversal_flops: TraversalFlops,
    /// The domain the hierarchy was built on.
    pub domain: Domain,
    /// Measured per-phase communication when the run used
    /// [`Executor::Spmd`]; `None` for the shared-memory backends.
    pub spmd: Option<SpmdReport>,
}

/// Entry point of the message-passing backend, installed by
/// `fmm_spmd::install()`. Takes the configured instance, the inputs of one
/// evaluation, and the executor options from [`Executor::Spmd`].
pub type SpmdBackend = fn(
    fmm: &Fmm,
    positions: &[[f64; 3]],
    charges: &[f64],
    domain: Domain,
    with_fields: bool,
    opts: crate::config::SpmdOptions,
) -> Result<EvalOutput, FmmError>;

static SPMD_BACKEND: std::sync::OnceLock<SpmdBackend> = std::sync::OnceLock::new();

/// Install the SPMD backend. `fmm-core` cannot depend on `fmm-spmd` (the
/// dependency points the other way), so the backend registers itself
/// through this seam. Idempotent; the first installation wins.
pub fn install_spmd_backend(backend: SpmdBackend) {
    let _ = SPMD_BACKEND.set(backend);
}

/// A configured instance of Anderson's method with precomputed translation
/// matrices (the paper precomputes all 1331 + 16 matrices once and reuses
/// them across evaluations and levels).
pub struct Fmm {
    pub(crate) cfg: FmmConfig,
    pub(crate) rule: SphereRule,
    pub(crate) translations: TranslationSet,
    /// Plan registry this instance resolves its traversal plans from. A
    /// private registry by default (preserving per-instance `plan_builds`
    /// semantics); services share one process-wide registry across many
    /// instances via [`Fmm::with_registry`].
    registry: Arc<PlanRegistry>,
}

impl Fmm {
    /// Build an instance: validates the configuration and precomputes the
    /// translation matrices. Plans are cached in a private
    /// [`PlanRegistry`]; use [`Fmm::with_registry`] to share one.
    pub fn new(cfg: FmmConfig) -> Result<Self, FmmError> {
        Self::with_registry(
            cfg,
            Arc::new(PlanRegistry::new(PlanRegistry::DEFAULT_CAPACITY)),
        )
    }

    /// [`Fmm::new`] resolving plans from a shared registry — the
    /// "millions of users" configuration: every instance whose
    /// `(depth, K, separation, executor, kernel, precision)` shape matches
    /// an already-admitted plan reuses it without building.
    pub fn with_registry(cfg: FmmConfig, registry: Arc<PlanRegistry>) -> Result<Self, FmmError> {
        cfg.validate().map_err(FmmError::InvalidConfig)?;
        let rule = cfg.rule();
        let translations = TranslationSet::build(
            &rule,
            cfg.m_trunc,
            cfg.outer_ratio,
            cfg.inner_ratio,
            cfg.separation,
            cfg.supernodes,
        );
        Ok(Fmm {
            cfg,
            rule,
            translations,
            registry,
        })
    }

    /// The registry key this instance uses for plans at `depth`.
    pub fn plan_key(&self, depth: u32) -> PlanKey {
        PlanKey {
            depth,
            k: self.rule.len(),
            separation: self.cfg.separation,
            executor: self.cfg.effective_executor(),
            kernel: self.cfg.resolve_kernel(),
            precision: self.cfg.precision,
        }
    }

    /// The traversal plan for `depth`, building and caching it on first
    /// use. Repeated evaluations at the same depth reuse the cached plan
    /// and pay only for the GEMMs and particle work.
    pub fn plan_for(&self, depth: u32) -> Arc<TraversalPlan> {
        self.registry.get_or_build(self.plan_key(depth))
    }

    /// Number of traversal plans built so far (i.e. plan-registry misses).
    /// Repeated evaluations at the same depth must not increase this.
    /// Counts the whole registry: for a default (private) registry that is
    /// exactly this instance's builds; for a shared one it is process-wide.
    pub fn plan_builds(&self) -> u64 {
        self.registry.stats().plan_builds
    }

    /// The plan registry this instance resolves from.
    pub fn plan_registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    pub fn config(&self) -> &FmmConfig {
        &self.cfg
    }

    pub fn rule(&self) -> &SphereRule {
        &self.rule
    }

    pub fn translations(&self) -> &TranslationSet {
        &self.translations
    }

    /// Number of sphere integration points K.
    pub fn k(&self) -> usize {
        self.rule.len()
    }

    /// Evaluate potentials with the domain inferred from the particles'
    /// bounding cube.
    pub fn evaluate(
        &self,
        positions: &[[f64; 3]],
        charges: &[f64],
    ) -> Result<EvalOutput, FmmError> {
        if positions.is_empty() {
            return Err(FmmError::BadInput("no particles".into()));
        }
        let domain = Domain::bounding(positions);
        self.run(positions, charges, domain, false)
    }

    /// Evaluate potentials on an explicit domain.
    pub fn evaluate_in(
        &self,
        positions: &[[f64; 3]],
        charges: &[f64],
        domain: Domain,
    ) -> Result<EvalOutput, FmmError> {
        self.run(positions, charges, domain, false)
    }

    /// Evaluate potentials and fields (−∇Φ).
    pub fn evaluate_forces(
        &self,
        positions: &[[f64; 3]],
        charges: &[f64],
    ) -> Result<EvalOutput, FmmError> {
        if positions.is_empty() {
            return Err(FmmError::BadInput("no particles".into()));
        }
        let domain = Domain::bounding(positions);
        self.run(positions, charges, domain, true)
    }

    /// Evaluate the potential at arbitrary target points (not necessarily
    /// source particles). Targets coinciding with a source see that
    /// source's contribution skipped only if they coincide *exactly*.
    ///
    /// The far field is read from the leaf inner approximations of the
    /// target's box; the near field is summed directly over the source
    /// particles of the d-separation neighbourhood — the same split the
    /// paper uses for the sources themselves.
    pub fn evaluate_at(
        &self,
        targets: &[[f64; 3]],
        positions: &[[f64; 3]],
        charges: &[f64],
    ) -> Result<Vec<f64>, FmmError> {
        if positions.is_empty() {
            return Err(FmmError::BadInput("no particles".into()));
        }
        if positions.len() != charges.len() {
            return Err(FmmError::BadInput(
                "positions/charges length mismatch".into(),
            ));
        }
        // The domain must cover sources and targets.
        let mut all: Vec<[f64; 3]> = Vec::with_capacity(positions.len() + targets.len());
        all.extend_from_slice(positions);
        all.extend_from_slice(targets);
        let domain = Domain::bounding(&all);
        drop(all);

        let depth = self.cfg.depth.resolve(positions.len());
        let k = self.k();
        let par = self.cfg.parallel;
        let plan = self.plan_for(depth);
        let bp = BinnedParticles::build(positions, charges, domain, depth);
        let mut fh = FieldHierarchy::new(Hierarchy::new(depth), k);
        let leaf_side = domain.box_side(depth);
        let a_leaf = self.cfg.outer_ratio * leaf_side;
        p2o(
            &bp,
            &self.rule,
            a_leaf,
            depth,
            par,
            &mut fh.far[depth as usize],
        );
        upward_pass(&mut fh, &self.translations, &plan, Aggregation::Gemm, par);
        downward_pass(
            &mut fh,
            &self.translations,
            &plan,
            self.cfg.supernodes,
            Aggregation::Gemm,
            par,
        );

        let b_leaf = self.cfg.inner_ratio * leaf_side;
        let m = self.cfg.m_trunc;
        let near_offsets = fmm_tree::near_field_offsets(self.cfg.separation);
        let local_leaf = &fh.local[depth as usize];
        let eval_one = |t: &[f64; 3]| -> f64 {
            let b = domain.locate(*t, depth);
            let c = domain.box_center(b);
            let mut row = vec![0.0; k];
            inner_kernel_row(
                &self.rule,
                m,
                b_leaf,
                [t[0] - c[0], t[1] - c[1], t[2] - c[2]],
                &mut row,
            );
            let g = &local_leaf[b.index() * k..(b.index() + 1) * k];
            let mut pot: f64 = row.iter().zip(g).map(|(r, gg)| r * gg).sum();
            // Near field: own box + neighbours, direct.
            let mut near_box = |bb: BoxCoord| {
                for s in bp.range(bb.index()) {
                    let dx = t[0] - bp.x[s];
                    let dy = t[1] - bp.y[s];
                    let dz = t[2] - bp.z[s];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    if r2 > 0.0 {
                        pot += bp.q[s] / r2.sqrt();
                    }
                }
            };
            near_box(b);
            for &d in &near_offsets {
                if let Some(nb) = b.offset(d) {
                    near_box(nb);
                }
            }
            pot
        };
        let out: Vec<f64> = if par {
            targets.par_iter().map(eval_one).collect()
        } else {
            targets.iter().map(eval_one).collect()
        };
        Ok(out)
    }

    fn run(
        &self,
        positions: &[[f64; 3]],
        charges: &[f64],
        domain: Domain,
        with_fields: bool,
    ) -> Result<EvalOutput, FmmError> {
        if positions.is_empty() {
            return Err(FmmError::BadInput("no particles".into()));
        }
        if positions.len() != charges.len() {
            return Err(FmmError::BadInput(format!(
                "{} positions vs {} charges",
                positions.len(),
                charges.len()
            )));
        }
        if let Executor::Spmd(opts) = self.cfg.effective_executor() {
            let backend = SPMD_BACKEND.get().ok_or_else(|| {
                FmmError::InvalidConfig(
                    "Executor::Spmd selected but no backend installed; call fmm_spmd::install()"
                        .into(),
                )
            })?;
            return backend(self, positions, charges, domain, with_fields, opts);
        }
        let depth = self.cfg.depth.resolve(positions.len());
        let k = self.k();
        let par = self.cfg.parallel;
        let plan = self.plan_for(depth);
        let mut profile = Profile::new();

        // Step 0: coordinate sort / binning (paper §3.2).
        let bp = profile.time(Phase::Sort, || {
            BinnedParticles::build(positions, charges, domain, depth)
        });

        // Steps 1–4: the hierarchy sweeps. With `cfg.fused` (the default)
        // the leaf-adjacent sweeps are fused so leaf panels are consumed
        // while still cache-resident: P2O feeds the leaf T1 GEMM slab by
        // slab, and the leaf-level downward sweep hands each finished slab
        // straight to particle evaluation. Both fusions only reorder the
        // loops — every per-box operation is unchanged — so fused and
        // unfused runs are bitwise identical.
        let mut fh = FieldHierarchy::new(Hierarchy::new(depth), k);
        let leaf_side = domain.box_side(depth);
        let a_leaf = self.cfg.outer_ratio * leaf_side;
        let b_leaf = self.cfg.inner_ratio * leaf_side;
        let mut tflops = TraversalFlops::default();
        let mut far_pot = vec![0.0; bp.len()];
        let mut far_field = if with_fields {
            Some(vec![[0.0; 3]; bp.len()])
        } else {
            None
        };

        if self.cfg.fused && depth >= 3 {
            // Step 1+2a: fused P2O + leaf T1 (the upward pass is a no-op
            // below depth 3, so there is nothing to fuse there).
            let fill = |c0: usize, c1: usize, kids: &mut [f64]| {
                for (b, g) in (c0..c1).zip(kids.chunks_mut(k)) {
                    p2o_box(&bp, &self.rule, a_leaf, depth, b, g);
                }
            };
            let leaf_up = profile.time(Phase::P2O, || {
                fused_p2o_upward_leaf(&mut fh, &self.translations, &plan, par, &fill)
            });
            // P2O flops are analytic (Σ per-box work is exactly n·K·10);
            // the leaf T1 GEMM that rode along is accounted to Upward.
            profile.add_flops(Phase::P2O, (bp.len() * k) as u64 * 10);

            // Step 2b: the remaining upward levels.
            let up = profile.time(Phase::Upward, || {
                let mut acc = TraversalFlops::default();
                for l in (1..depth - 1).rev() {
                    let f = upward_level(
                        &mut fh,
                        &self.translations,
                        &plan,
                        l,
                        Aggregation::Gemm,
                        par,
                    );
                    acc.t1 += f.t1;
                    acc.copied += f.copied;
                }
                acc
            });
            tflops.t1 = leaf_up.t1 + up.t1;
            tflops.copied = leaf_up.copied + up.copied;
            profile.add_flops(Phase::Upward, tflops.t1);
        } else {
            // Step 1: leaf-level outer approximations (P2O).
            let p2o_flops = profile.time(Phase::P2O, || {
                p2o(
                    &bp,
                    &self.rule,
                    a_leaf,
                    depth,
                    par,
                    &mut fh.far[depth as usize],
                )
            });
            profile.add_flops(Phase::P2O, p2o_flops);

            // Step 2: upward pass.
            let up = profile.time(Phase::Upward, || {
                upward_pass(&mut fh, &self.translations, &plan, Aggregation::Gemm, par)
            });
            profile.add_flops(Phase::Upward, up.t1);
            tflops.t1 = up.t1;
            tflops.copied = up.copied;
        }

        if self.cfg.fused {
            // Step 3a: downward levels above the leaves (T2 + T3 timed
            // together; the interactive field dominates, as in the paper).
            let down = profile.time(Phase::Interactive, || {
                let mut acc = TraversalFlops::default();
                for l in 2..depth {
                    let f = downward_level(
                        &mut fh,
                        &self.translations,
                        &plan,
                        self.cfg.supernodes,
                        Aggregation::Gemm,
                        par,
                        l,
                    );
                    acc.t2 += f.t2;
                    acc.t3 += f.t3;
                    acc.copied += f.copied;
                }
                acc
            });

            // Step 3b+4: leaf downward fused with particle evaluation.
            // The whole fused sweep is timed as Eval; its T2/T3 flops are
            // still attributed to Interactive/Downward.
            let eval_flops = AtomicU64::new(0);
            let out = FusedEvalOut {
                pot: far_pot.as_mut_ptr(),
                field: far_field.as_deref_mut().map(|f| f.as_mut_ptr()),
            };
            let bp_ref = &bp;
            let rule = &self.rule;
            let m_trunc = self.cfg.m_trunc;
            let eval_flops_ref = &eval_flops;
            let leaf_down = profile.time(Phase::Eval, || {
                // `move` captures the wrapper as one (Sync) value rather
                // than as bare raw-pointer fields.
                let sink = move |c0: usize, c1: usize, chunk: &[f64]| {
                    let (pot, field) = out.parts();
                    let mut fl = 0u64;
                    for b in c0..c1 {
                        let range = bp_ref.range(b);
                        if range.is_empty() {
                            continue;
                        }
                        let g = &chunk[(b - c0) * k..(b - c0 + 1) * k];
                        // SAFETY: leaf boxes own disjoint particle ranges
                        // and concurrent sink invocations cover disjoint
                        // boxes, so these slices never alias.
                        let po = unsafe {
                            std::slice::from_raw_parts_mut(pot.add(range.start), range.len())
                        };
                        // SAFETY: as above — same disjoint range of the
                        // field buffer.
                        let fo = field.map(|fp| unsafe {
                            std::slice::from_raw_parts_mut(fp.add(range.start), range.len())
                        });
                        fl += eval_box(bp_ref, rule, m_trunc, b_leaf, depth, b, g, po, fo);
                    }
                    eval_flops_ref.fetch_add(fl, Ordering::Relaxed);
                };
                downward_level_fused(
                    &mut fh,
                    &self.translations,
                    &plan,
                    self.cfg.supernodes,
                    Aggregation::Gemm,
                    par,
                    depth,
                    &sink,
                )
            });
            profile.add_flops(Phase::Interactive, down.t2 + leaf_down.t2);
            profile.add_flops(Phase::Downward, down.t3 + leaf_down.t3);
            profile.add_flops(Phase::Eval, eval_flops.load(Ordering::Relaxed));
            tflops.t2 = down.t2 + leaf_down.t2;
            tflops.t3 = down.t3 + leaf_down.t3;
            tflops.copied += down.copied + leaf_down.copied;
        } else {
            // Step 3: downward pass (T2 + T3 are timed together inside;
            // the interactive field dominates, as in the paper).
            let down = profile.time(Phase::Interactive, || {
                downward_pass(
                    &mut fh,
                    &self.translations,
                    &plan,
                    self.cfg.supernodes,
                    Aggregation::Gemm,
                    par,
                )
            });
            profile.add_flops(Phase::Interactive, down.t2);
            profile.add_flops(Phase::Downward, down.t3);
            tflops.t2 = down.t2;
            tflops.t3 = down.t3;
            tflops.copied += down.copied;

            // Step 4: evaluate leaf inner approximations at the particles.
            let eval_flops = profile.time(Phase::Eval, || {
                eval_local(
                    &bp,
                    &self.rule,
                    self.cfg.m_trunc,
                    b_leaf,
                    depth,
                    par,
                    &fh.local[depth as usize],
                    &mut far_pot,
                    far_field.as_deref_mut(),
                )
            });
            profile.add_flops(Phase::Eval, eval_flops);
        }

        // Step 5: near-field direct evaluation. `Precision::Mixed` swaps
        // in the f32 SIMD sweeps (8 lanes on AVX2, 16 on AVX-512); the
        // traversal above stays f64 either way.
        let mixed = self.cfg.precision == Precision::Mixed;
        let mut near_pot = vec![0.0; bp.len()];
        let near_stats = if with_fields {
            let mut near_f = vec![[0.0; 3]; bp.len()];
            let st = profile.time(Phase::Near, || {
                if mixed {
                    near_field_forces_f32(
                        plan.kernel,
                        &bp,
                        self.cfg.separation,
                        par,
                        self.cfg.softening,
                        &mut near_pot,
                        &mut near_f,
                    )
                } else {
                    near_field_forces_softened(
                        &bp,
                        self.cfg.separation,
                        par,
                        self.cfg.softening,
                        &mut near_pot,
                        &mut near_f,
                    )
                }
            });
            if let Some(ff) = far_field.as_mut() {
                for (a, b) in ff.iter_mut().zip(&near_f) {
                    for d in 0..3 {
                        a[d] += b[d];
                    }
                }
            }
            st
        } else {
            // Potentials use the travelling-accumulator sweep: Newton's
            // third law halves the pair work, the ordered unit steps keep
            // the parallel scatter conflict-free, and the message-passing
            // executor runs the identical arithmetic — all backends are
            // bitwise interchangeable. Its stats report third-law-halved
            // counts, identical to the sequential symmetric sweep. The
            // mixed-precision variant runs the colored symmetric schedule
            // recorded on the plan.
            profile.time(Phase::Near, || {
                if mixed {
                    near_field_potentials_f32(
                        plan.kernel,
                        &bp,
                        self.cfg.separation,
                        &plan.near_schedule,
                        par,
                        self.cfg.softening,
                        &mut near_pot,
                    )
                } else {
                    near_field_travelling_with(
                        plan.kernel,
                        &bp,
                        self.cfg.separation,
                        par,
                        self.cfg.softening,
                        &mut near_pot,
                    )
                }
            })
        };
        profile.add_flops(Phase::Near, near_stats.flops);

        // Combine and scatter back to original particle order.
        for (f, n) in far_pot.iter_mut().zip(&near_pot) {
            *f += n;
        }
        let potentials = bp.binning.scatter(&far_pot);
        let fields = far_field.map(|ff| bp.binning.scatter(&ff));

        Ok(EvalOutput {
            potentials,
            fields,
            profile,
            depth,
            near_stats,
            traversal_flops: tflops,
            domain,
            spmd: None,
        })
    }
}

/// Shared output pointers for the fused leaf downward+eval sink. Each
/// sink invocation only touches the particle ranges of its own slab's
/// leaf boxes, which are disjoint across invocations.
#[derive(Clone, Copy)]
struct FusedEvalOut {
    pot: *mut f64,
    field: Option<*mut [f64; 3]>,
}
// SAFETY: concurrent sink invocations cover disjoint leaf boxes whose
// particle ranges are disjoint, so no two threads ever touch the same
// element behind these pointers.
unsafe impl Sync for FusedEvalOut {}
// SAFETY: as above — the pointers are only dereferenced inside disjoint
// per-box ranges.
unsafe impl Send for FusedEvalOut {}

impl FusedEvalOut {
    /// Split into the raw pointers. A method call on the whole receiver
    /// makes closures capture the (Sync) wrapper rather than its bare
    /// raw-pointer fields (RFC 2229 precise capture would otherwise split
    /// the struct and lose the `Sync` impl).
    fn parts(self) -> (*mut f64, Option<*mut [f64; 3]>) {
        (self.pot, self.field)
    }
}

/// One box of [`p2o`]: fill leaf box `b`'s outer samples `g`. Returns the
/// flop count (0 for an empty box, whose samples are left untouched —
/// they start zeroed). Shared by the plain pass and the fused fill.
fn p2o_box(
    bp: &BinnedParticles,
    rule: &SphereRule,
    a_leaf: f64,
    depth: u32,
    b: usize,
    g: &mut [f64],
) -> u64 {
    let range = bp.range(b);
    if range.is_empty() {
        return 0;
    }
    let k = rule.len();
    let c = bp.domain.box_center(BoxCoord::from_index(depth, b));
    for (i, &s) in rule.points.iter().enumerate() {
        let sp = [
            c[0] + a_leaf * s[0],
            c[1] + a_leaf * s[1],
            c[2] + a_leaf * s[2],
        ];
        let mut acc = 0.0;
        for j in range.clone() {
            let d = [sp[0] - bp.x[j], sp[1] - bp.y[j], sp[2] - bp.z[j]];
            acc += bp.q[j] / norm(d);
        }
        g[i] = acc;
    }
    (range.len() * k) as u64 * 10
}

/// Leaf-level particle → outer samples: g_i = Σ_j q_j / |c + a s_i − x_j|.
/// Public (hidden) so the SPMD backend can run the identical per-box loop
/// on its locally-owned boxes.
#[doc(hidden)]
pub fn p2o(
    bp: &BinnedParticles,
    rule: &SphereRule,
    a_leaf: f64,
    depth: u32,
    parallel: bool,
    far_leaf: &mut [f64],
) -> u64 {
    let k = rule.len();
    let work = |(b, g): (usize, &mut [f64])| -> u64 { p2o_box(bp, rule, a_leaf, depth, b, g) };
    // det: the reduction sums integer flop counts; the float outputs land
    // in disjoint chunks, untouched by the combine order.
    if parallel {
        far_leaf.par_chunks_mut(k).enumerate().map(work).sum()
    } else {
        far_leaf.chunks_mut(k).enumerate().map(work).sum()
    }
}

/// Leaf-level inner samples → particle potentials (and fields). Public
/// (hidden) for the SPMD backend, like [`p2o`].
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn eval_local(
    bp: &BinnedParticles,
    rule: &SphereRule,
    m: usize,
    b_leaf: f64,
    depth: u32,
    parallel: bool,
    local_leaf: &[f64],
    pot: &mut [f64],
    mut fields: Option<&mut [[f64; 3]]>,
) -> u64 {
    let k = rule.len();
    let n_boxes = 1usize << (3 * depth);

    // Split outputs per box (contiguous ranges).
    let mut pot_slices: Vec<&mut [f64]> = Vec::with_capacity(n_boxes);
    {
        let mut rest: &mut [f64] = pot;
        for b in 0..n_boxes {
            let (head, tail) = rest.split_at_mut(bp.binning.count(b));
            pot_slices.push(head);
            rest = tail;
        }
    }
    let mut field_slices: Vec<Option<&mut [[f64; 3]]>> = Vec::with_capacity(n_boxes);
    match fields.as_mut() {
        Some(f) => {
            let mut rest: &mut [[f64; 3]] = f;
            for b in 0..n_boxes {
                let (head, tail) = rest.split_at_mut(bp.binning.count(b));
                field_slices.push(Some(head));
                rest = tail;
            }
        }
        None => field_slices.resize_with(n_boxes, || None),
    }

    #[allow(clippy::type_complexity)]
    let work = |(b, (po, fo)): (usize, (&mut &mut [f64], &mut Option<&mut [[f64; 3]]>))| -> u64 {
        let g = &local_leaf[b * k..(b + 1) * k];
        eval_box(bp, rule, m, b_leaf, depth, b, g, po, fo.as_deref_mut())
    };

    // det: integer flop-count reduction; floats stay in disjoint slices.
    if parallel {
        pot_slices
            .par_iter_mut()
            .zip(field_slices.par_iter_mut())
            .enumerate()
            .map(work)
            .sum()
    } else {
        pot_slices
            .iter_mut()
            .zip(field_slices.iter_mut())
            .enumerate()
            .map(work)
            .sum()
    }
}

/// One box of [`eval_local`]: evaluate leaf box `b`'s inner samples `g` at
/// its particles, accumulating into the box's potential slice `po` (and
/// field slice `fo`). Returns the flop count. Shared by the plain pass and
/// the fused leaf downward+eval sink.
#[allow(clippy::too_many_arguments)]
fn eval_box(
    bp: &BinnedParticles,
    rule: &SphereRule,
    m: usize,
    b_leaf: f64,
    depth: u32,
    b: usize,
    g: &[f64],
    po: &mut [f64],
    mut fo: Option<&mut [[f64; 3]]>,
) -> u64 {
    let range = bp.range(b);
    if range.is_empty() {
        return 0;
    }
    let k = rule.len();
    let c = bp.domain.box_center(BoxCoord::from_index(depth, b));
    let mut row = vec![0.0; k];
    let mut grad_rows = [vec![0.0; k], vec![0.0; k], vec![0.0; k]];
    for (idx, j) in range.clone().enumerate() {
        let x = [bp.x[j] - c[0], bp.y[j] - c[1], bp.z[j] - c[2]];
        inner_kernel_row(rule, m, b_leaf, x, &mut row);
        po[idx] += row.iter().zip(g).map(|(r, gg)| r * gg).sum::<f64>();
        if let Some(f) = fo.as_mut() {
            inner_kernel_row_grad(rule, m, b_leaf, x, &mut grad_rows);
            for d in 0..3 {
                // field is −∇Φ
                f[idx][d] -= grad_rows[d]
                    .iter()
                    .zip(g)
                    .map(|(r, gg)| r * gg)
                    .sum::<f64>();
            }
        }
    }
    (range.len() * k * (m + 1)) as u64 * 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FmmConfig;

    fn pseudo_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| [next(), next(), next()]).collect()
    }

    /// Uniform points with unit charges — the paper's gravitational-mass
    /// convention, under which its accuracy figures are quoted.
    fn pseudo_system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        (pseudo_points(n, seed), vec![1.0; n])
    }

    /// Mixed-sign charges: a harsher relative-error metric because the
    /// reference potential fluctuates around zero.
    fn pseudo_mixed(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let pts = pseudo_points(n, seed);
        let mut state = seed ^ 0xabcdef;
        let q: Vec<f64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        (pts, q)
    }

    fn direct(positions: &[[f64; 3]], charges: &[f64]) -> Vec<f64> {
        let n = positions.len();
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = [
                    positions[i][0] - positions[j][0],
                    positions[i][1] - positions[j][1],
                    positions[i][2] - positions[j][2],
                ];
                acc += charges[j] / norm(d);
            }
            out[i] = acc;
        }
        out
    }

    #[test]
    fn depth2_matches_direct_to_expected_accuracy() {
        let (pts, q) = pseudo_system(600, 42);
        let fmm = Fmm::new(FmmConfig::order(5).depth(2).sequential()).unwrap();
        let out = fmm.evaluate(&pts, &q).unwrap();
        let reference = direct(&pts, &q);
        let stats = crate::error::relative_error_stats(&out.potentials, &reference);
        assert!(
            stats.rms_rel < 5e-4,
            "rms_rel = {:.2e} (digits {:.1})",
            stats.rms_rel,
            stats.digits()
        );
    }

    #[test]
    fn depth3_matches_direct() {
        let (pts, q) = pseudo_system(2000, 7);
        let fmm = Fmm::new(FmmConfig::order(5).depth(3)).unwrap();
        let out = fmm.evaluate(&pts, &q).unwrap();
        let reference = direct(&pts, &q);
        let stats = crate::error::relative_error_stats(&out.potentials, &reference);
        assert!(
            stats.rms_rel < 5e-4,
            "rms_rel = {:.2e} (digits {:.1})",
            stats.rms_rel,
            stats.digits()
        );
    }

    #[test]
    fn supernodes_agree_with_plain_t2() {
        let (pts, q) = pseudo_system(1500, 11);
        let plain = Fmm::new(FmmConfig::order(5).depth(3).supernodes(false)).unwrap();
        let sup = Fmm::new(FmmConfig::order(5).depth(3).supernodes(true)).unwrap();
        let p1 = plain.evaluate(&pts, &q).unwrap().potentials;
        let p2 = sup.evaluate(&pts, &q).unwrap().potentials;
        let stats = crate::error::relative_error_stats(&p2, &p1);
        // Slight accuracy cost is expected (paper §2.3), but results must
        // agree to within the method's own accuracy scale.
        assert!(
            stats.rms_rel < 2e-3,
            "supernode deviation {:.2e}",
            stats.rms_rel
        );
    }

    #[test]
    fn parallel_matches_sequential_bitwise_phases() {
        let (pts, q) = pseudo_system(800, 13);
        let seq = Fmm::new(FmmConfig::order(3).depth(3).sequential()).unwrap();
        let par = Fmm::new(FmmConfig::order(3).depth(3)).unwrap();
        let a = seq.evaluate(&pts, &q).unwrap().potentials;
        let b = par.evaluate(&pts, &q).unwrap().potentials;
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
        }
    }

    #[test]
    fn fields_match_direct_forces() {
        let (pts, q) = pseudo_system(400, 17);
        let fmm = Fmm::new(FmmConfig::order(5).depth(2)).unwrap();
        let out = fmm.evaluate_forces(&pts, &q).unwrap();
        let fields = out.fields.unwrap();
        // Direct field at particle i: Σ q_j (x_i − x_j)/r³.
        let mut worst = 0.0f64;
        let mut fnorm = 0.0f64;
        for i in 0..pts.len() {
            let mut f = [0.0; 3];
            for j in 0..pts.len() {
                if i == j {
                    continue;
                }
                let d = [
                    pts[i][0] - pts[j][0],
                    pts[i][1] - pts[j][1],
                    pts[i][2] - pts[j][2],
                ];
                let r = norm(d);
                let c = q[j] / (r * r * r);
                for a in 0..3 {
                    f[a] += c * d[a];
                }
            }
            for a in 0..3 {
                worst = worst.max((f[a] - fields[i][a]).abs());
                fnorm = fnorm.max(f[a].abs());
            }
        }
        assert!(
            worst < 1e-2 * fnorm,
            "field error {:.2e} vs scale {:.2e}",
            worst,
            fnorm
        );
    }

    #[test]
    fn charge_superposition_linearity() {
        let (pts, q1) = pseudo_mixed(500, 19);
        let (_, q2) = pseudo_mixed(500, 23);
        let domain = Domain::bounding(&pts);
        let fmm = Fmm::new(FmmConfig::order(3).depth(2).sequential()).unwrap();
        let p1 = fmm.evaluate_in(&pts, &q1, domain).unwrap().potentials;
        let p2 = fmm.evaluate_in(&pts, &q2, domain).unwrap().potentials;
        let qs: Vec<f64> = q1.iter().zip(&q2).map(|(a, b)| a + b).collect();
        let ps = fmm.evaluate_in(&pts, &qs, domain).unwrap().potentials;
        for i in 0..pts.len() {
            assert!(
                (ps[i] - p1[i] - p2[i]).abs() < 1e-9 * ps[i].abs().max(1.0),
                "superposition violated at {}",
                i
            );
        }
    }

    #[test]
    fn evaluate_at_matches_direct_at_off_particle_points() {
        let (pts, q) = pseudo_system(1200, 31);
        let fmm = Fmm::new(FmmConfig::order(5).depth(3)).unwrap();
        // Probe points strictly inside the cube, away from particles.
        let targets: Vec<[f64; 3]> = (0..50)
            .map(|i| {
                let f = i as f64 / 50.0;
                [
                    0.1 + 0.8 * f,
                    0.5 + 0.3 * (f * 9.0).sin() * 0.5,
                    0.3 + 0.5 * f,
                ]
            })
            .collect();
        let approx = fmm.evaluate_at(&targets, &pts, &q).unwrap();
        for (t, a) in targets.iter().zip(&approx) {
            let exact: f64 = pts
                .iter()
                .zip(&q)
                .map(|(p, qq)| {
                    let d = [t[0] - p[0], t[1] - p[1], t[2] - p[2]];
                    qq / norm(d)
                })
                .sum();
            assert!(
                (a - exact).abs() < 2e-3 * exact.abs().max(1.0),
                "target {:?}: {} vs {}",
                t,
                a,
                exact
            );
        }
    }

    #[test]
    fn evaluate_at_particle_positions_matches_evaluate() {
        let (pts, q) = pseudo_system(800, 37);
        let fmm = Fmm::new(FmmConfig::order(5).depth(3).sequential()).unwrap();
        let at = fmm.evaluate_at(&pts, &pts, &q).unwrap();
        let out = fmm.evaluate(&pts, &q).unwrap().potentials;
        // evaluate_at skips exactly-coincident sources, so at a particle's
        // own position the two agree.
        for (a, b) in at.iter().zip(&out) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{} vs {}", a, b);
        }
    }

    #[test]
    fn repeated_evaluate_reuses_plan_and_is_bitwise_identical() {
        let (pts, q) = pseudo_system(900, 41);
        let fmm = Fmm::new(FmmConfig::order(3).depth(3)).unwrap();
        assert_eq!(fmm.plan_builds(), 0);
        let first = fmm.evaluate(&pts, &q).unwrap();
        assert_eq!(fmm.plan_builds(), 1);
        let second = fmm.evaluate(&pts, &q).unwrap();
        assert_eq!(
            fmm.plan_builds(),
            1,
            "second evaluate must reuse the cached traversal plan"
        );
        for (x, y) in first.potentials.iter().zip(&second.potentials) {
            assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
        assert_eq!(first.near_stats, second.near_stats);
    }

    #[test]
    fn fused_matches_unfused_bitwise() {
        // The fused leaf sweeps only reorder loops, so potentials, fields
        // and every counter must match the unfused phases exactly.
        let (pts, q) = pseudo_mixed(1200, 47);
        for depth in [2u32, 3] {
            let fused = Fmm::new(FmmConfig::order(3).depth(depth)).unwrap();
            let plain = Fmm::new(FmmConfig::order(3).depth(depth).fused(false)).unwrap();
            let a = fused.evaluate_forces(&pts, &q).unwrap();
            let b = plain.evaluate_forces(&pts, &q).unwrap();
            for (x, y) in a.potentials.iter().zip(&b.potentials) {
                assert_eq!(x.to_bits(), y.to_bits(), "depth {}", depth);
            }
            for (x, y) in a.fields.unwrap().iter().zip(b.fields.as_ref().unwrap()) {
                for d in 0..3 {
                    assert_eq!(x[d].to_bits(), y[d].to_bits(), "depth {}", depth);
                }
            }
            assert_eq!(a.near_stats, b.near_stats);
            assert_eq!(a.traversal_flops, b.traversal_flops);
            assert_eq!(a.profile.total_flops(), b.profile.total_flops());
        }
    }

    #[test]
    fn forced_kernels_match_across_executors_bitwise() {
        // Each kernel family must give one answer regardless of the
        // shared-memory executor (scalar parity across families is the
        // linalg proptests' job; families legitimately differ in the last
        // ulps from each other).
        let (pts, q) = pseudo_mixed(900, 53);
        for kernel in crate::Kernel::available() {
            let seq = Fmm::new(FmmConfig::order(3).depth(3).kernel(kernel).sequential()).unwrap();
            let par = Fmm::new(FmmConfig::order(3).depth(3).kernel(kernel)).unwrap();
            let a = seq.evaluate(&pts, &q).unwrap();
            let b = par.evaluate(&pts, &q).unwrap();
            for (x, y) in a.potentials.iter().zip(&b.potentials) {
                assert_eq!(x.to_bits(), y.to_bits(), "kernel {}", kernel.name());
            }
            assert_eq!(a.near_stats, b.near_stats);
        }
    }

    #[test]
    fn mixed_precision_tracks_f64() {
        let (pts, q) = pseudo_system(2000, 59);
        let f64_fmm = Fmm::new(FmmConfig::order(3).depth(3)).unwrap();
        let f32_fmm = Fmm::new(FmmConfig::order(3).depth(3).precision(Precision::Mixed)).unwrap();
        let a = f64_fmm.evaluate(&pts, &q).unwrap();
        let b = f32_fmm.evaluate(&pts, &q).unwrap();
        // Near-field counters are identical; only the arithmetic width
        // changes, and only in the near field.
        assert_eq!(
            a.near_stats.pair_interactions,
            b.near_stats.pair_interactions
        );
        for (x, y) in a.potentials.iter().zip(&b.potentials) {
            assert!(
                (x - y).abs() <= 1e-5 * x.abs().max(1.0),
                "mixed near field drifted: {} vs {}",
                x,
                y
            );
        }
    }

    #[test]
    fn near_stats_report_halved_symmetric_counts() {
        // The driver's potentials path uses the symmetric sweep, whose
        // pair counter records each interaction once (Newton's third law),
        // matching the sequential symmetric oracle exactly.
        let (pts, q) = pseudo_system(700, 43);
        let domain = Domain::bounding(&pts);
        let fmm = Fmm::new(FmmConfig::order(3).depth(2)).unwrap();
        let out = fmm.evaluate_in(&pts, &q, domain).unwrap();
        let bp = BinnedParticles::build(&pts, &q, domain, 2);
        let (_, sym) = crate::near::near_field_symmetric(&bp, fmm.config().separation);
        assert_eq!(out.near_stats, sym);
    }

    #[test]
    fn input_validation() {
        let fmm = Fmm::new(FmmConfig::order(3)).unwrap();
        assert!(matches!(fmm.evaluate(&[], &[]), Err(FmmError::BadInput(_))));
        assert!(matches!(
            fmm.evaluate(&[[0.0; 3]], &[1.0, 2.0]),
            Err(FmmError::BadInput(_))
        ));
        assert!(matches!(
            Fmm::new(FmmConfig::order(3).radii(0.1, 0.1)),
            Err(FmmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn profile_is_populated() {
        let (pts, q) = pseudo_system(1000, 29);
        let fmm = Fmm::new(FmmConfig::order(3).depth(3)).unwrap();
        let out = fmm.evaluate(&pts, &q).unwrap();
        assert!(out.profile.total_flops() > 0);
        assert!(out.profile.phase_flops(Phase::Interactive) > 0);
        assert!(out.profile.phase_flops(Phase::Near) > 0);
        assert_eq!(out.depth, 3);
    }
}
