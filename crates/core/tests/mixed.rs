//! Mixed-precision acceptance: the f32 near-field mode against the
//! direct O(N²) sum and against the all-f64 method.
//!
//! The error metric is the repo standard ([`fmm_core::relative_error_stats`]):
//! error normalized by the *system RMS* of the reference, the paper's ε₁
//! convention. The documented bound (DESIGN.md §5.5): on the standard
//! uniform unit-charge configuration, `Precision::Mixed` stays within
//! max_rel ≤ 1e-5 of the direct sum for potentials — the f32 near field
//! contributes less than the method's own truncation error at order 5.
//!
//! In debug builds the system is scaled down (4 000 particles, depth 3 —
//! same per-box occupancy) so tier-1 `cargo test` stays fast; release
//! builds run the full 40 000-particle depth-4 standard configuration.

use fmm_core::{relative_error_stats, Fmm, FmmConfig, Precision};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn uniform(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
        .collect()
}

fn standard_config() -> (Vec<[f64; 3]>, Vec<f64>, u32) {
    // The bench harness's standard evaluate workload: uniform points,
    // unit charges, order 5. 40k/depth-4 in release, 4k/depth-3 in debug.
    let (n, depth) = if cfg!(debug_assertions) {
        (4_000, 3)
    } else {
        (40_000, 4)
    };
    let pts = uniform(n, 101);
    let q = vec![1.0; n];
    (pts, q, depth)
}

#[test]
fn mixed_precision_meets_error_bound_vs_direct() {
    let (pts, q, depth) = standard_config();
    let reference = fmm_direct::potentials(&pts, &q);

    let f64_out = Fmm::new(FmmConfig::order(5).depth(depth))
        .unwrap()
        .evaluate(&pts, &q)
        .unwrap();
    let mixed_out = Fmm::new(FmmConfig::order(5).depth(depth).precision(Precision::Mixed))
        .unwrap()
        .evaluate(&pts, &q)
        .unwrap();

    let f64_stats = relative_error_stats(&f64_out.potentials, &reference);
    let mixed_stats = relative_error_stats(&mixed_out.potentials, &reference);

    // The documented acceptance bound for the mixed mode: the error the
    // f32 near field *adds* stays below 1e-5 of the system RMS potential —
    // an order of magnitude under the order-5 truncation error, so
    // accuracy vs the direct sum is truncation-dominated, not
    // precision-dominated.
    let delta = relative_error_stats(&mixed_out.potentials, &f64_out.potentials);
    assert!(
        delta.max_rel <= 1e-5,
        "f32 near-field increment: max_rel {:.3e}",
        delta.max_rel
    );
    // And the end-to-end error vs the direct sum is indistinguishable
    // from the all-f64 method's truncation error.
    assert!(
        mixed_stats.rms_rel <= 1.2 * f64_stats.rms_rel
            && mixed_stats.max_rel <= 1.2 * f64_stats.max_rel,
        "mixed (rms {:.3e}, max {:.3e}) vs f64 (rms {:.3e}, max {:.3e})",
        mixed_stats.rms_rel,
        mixed_stats.max_rel,
        f64_stats.rms_rel,
        f64_stats.max_rel
    );
    // Same work was done: identical near-field pair counts.
    assert_eq!(
        mixed_out.near_stats.pair_interactions,
        f64_out.near_stats.pair_interactions
    );
}

#[test]
fn mixed_precision_force_error_is_bounded() {
    let (pts, q, depth) = standard_config();

    let f64_out = Fmm::new(FmmConfig::order(5).depth(depth))
        .unwrap()
        .evaluate_forces(&pts, &q)
        .unwrap();
    let mixed_out = Fmm::new(FmmConfig::order(5).depth(depth).precision(Precision::Mixed))
        .unwrap()
        .evaluate_forces(&pts, &q)
        .unwrap();

    let pstats = relative_error_stats(&mixed_out.potentials, &f64_out.potentials);
    assert!(
        pstats.max_rel <= 1e-5,
        "mixed vs f64 potentials: max_rel {:.3e}",
        pstats.max_rel
    );

    // Fields amplify the f32 coordinate representation error by 1/r at
    // unsoftened close pairs (DESIGN.md §5.5 derives the ε₃₂·L/r limit —
    // irreducible in f32, in line with the GRAPE low-accuracy precedent).
    // The RMS stays tight; the max carries the close-pair amplification.
    let flat = |f: &Option<Vec<[f64; 3]>>| -> Vec<f64> {
        f.as_ref().unwrap().iter().flatten().copied().collect()
    };
    let fstats = relative_error_stats(&flat(&mixed_out.fields), &flat(&f64_out.fields));
    assert!(
        fstats.rms_rel <= 1e-3 && fstats.max_rel <= 0.1,
        "mixed vs f64 fields: rms_rel {:.3e} max_rel {:.3e}",
        fstats.rms_rel,
        fstats.max_rel
    );
}
