//! Acceptance tests for the serving substrate: batched multi-request
//! evaluation must be bitwise identical to per-request [`Fmm::evaluate`],
//! and the shared [`PlanRegistry`] must build each distinct key exactly
//! once under concurrent hammering while enforcing its LRU bound.

use fmm_core::{
    BatchRequest, Executor, Fmm, FmmConfig, PlanKey, PlanRegistry, Precision, Separation,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<[f64; 3]> = (0..n)
        .map(|_| [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    let q: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    (pts, q)
}

/// Golden test: a coalesced batch reproduces per-request `evaluate`
/// bit-for-bit, for potentials and forces, and the whole batch costs one
/// plan build.
#[test]
fn batched_evaluation_is_bitwise_identical_to_solo() {
    for depth in [2u32, 3] {
        let cfg = FmmConfig::order(4).depth(depth);
        let fmm = Fmm::new(cfg).unwrap();
        let systems: Vec<(Vec<[f64; 3]>, Vec<f64>)> = (0..8)
            .map(|i| system(64 + 16 * i, 900 + i as u64))
            .collect();
        let requests: Vec<BatchRequest> = systems
            .iter()
            .map(|(p, q)| BatchRequest {
                positions: p,
                charges: q,
            })
            .collect();

        let batch = fmm.evaluate_batch(&requests).unwrap();
        assert_eq!(batch.depth, depth);
        assert_eq!(
            fmm.plan_builds(),
            1,
            "one plan build for the whole batch at depth {depth}"
        );
        for (i, (p, q)) in systems.iter().enumerate() {
            let solo = fmm.evaluate(p, q).unwrap();
            let got = batch.potentials_of(i);
            assert_eq!(got.len(), solo.potentials.len());
            for (a, b) in got.iter().zip(&solo.potentials) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "depth {depth} request {i}: batched != solo"
                );
            }
        }
        // Still exactly one build: the solo evaluations reuse the plan.
        assert_eq!(fmm.plan_builds(), 1);

        let batch_f = fmm.evaluate_batch_forces(&requests).unwrap();
        for (i, (p, q)) in systems.iter().enumerate() {
            let solo = fmm.evaluate_forces(p, q).unwrap();
            let gf = batch_f.fields_of(i).unwrap();
            let sf = solo.fields.unwrap();
            for (a, b) in batch_f.potentials_of(i).iter().zip(&solo.potentials) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in gf.iter().zip(&sf) {
                for d in 0..3 {
                    assert_eq!(a[d].to_bits(), b[d].to_bits(), "forces request {i}");
                }
            }
        }
    }
}

/// The batched path composes with the other configuration axes the serve
/// shape key discriminates on: supernodes off and mixed precision.
#[test]
fn batched_evaluation_matches_solo_across_config_axes() {
    for cfg in [
        FmmConfig::order(3).depth(2).supernodes(false),
        FmmConfig::order(3).depth(2).precision(Precision::Mixed),
        FmmConfig::order(3)
            .depth(3)
            .kernel(fmm_core::Kernel::Scalar)
            .sequential(),
    ] {
        let fmm = Fmm::new(cfg).unwrap();
        let systems: Vec<(Vec<[f64; 3]>, Vec<f64>)> =
            (0..4).map(|i| system(96, 40 + i as u64)).collect();
        let requests: Vec<BatchRequest> = systems
            .iter()
            .map(|(p, q)| BatchRequest {
                positions: p,
                charges: q,
            })
            .collect();
        let batch = fmm.evaluate_batch(&requests).unwrap();
        for (i, (p, q)) in systems.iter().enumerate() {
            let solo = fmm.evaluate(p, q).unwrap();
            for (a, b) in batch.potentials_of(i).iter().zip(&solo.potentials) {
                assert_eq!(a.to_bits(), b.to_bits(), "request {i}");
            }
        }
    }
}

/// A batch of one is the degenerate case the batcher falls back to when
/// the window closes empty; it must behave exactly like `evaluate`.
#[test]
fn batch_of_one_matches_solo() {
    let fmm = Fmm::new(FmmConfig::order(4).depth(2)).unwrap();
    let (p, q) = system(200, 7);
    let batch = fmm
        .evaluate_batch(&[BatchRequest {
            positions: &p,
            charges: &q,
        }])
        .unwrap();
    let solo = fmm.evaluate(&p, &q).unwrap();
    for (a, b) in batch.potentials.iter().zip(&solo.potentials) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn batch_rejects_malformed_requests() {
    let fmm = Fmm::new(FmmConfig::order(3).depth(2)).unwrap();
    assert!(fmm.evaluate_batch(&[]).is_err());
    let (p, q) = system(32, 1);
    assert!(fmm
        .evaluate_batch(&[BatchRequest {
            positions: &p,
            charges: &q[..16],
        }])
        .is_err());
}

/// N threads hammer a shared registry with a mix of keys: every distinct
/// key is built exactly once (`plan_builds == distinct keys`) no matter
/// how the race interleaves, and hits account for the rest.
#[test]
fn registry_concurrent_stress_builds_each_key_once() {
    let registry = Arc::new(PlanRegistry::new(64));
    let distinct = 6u32; // depths 2..8, well under capacity
    let threads = 8;
    let iters = 40;
    let key = |depth: u32| PlanKey {
        depth,
        k: 12,
        separation: Separation::Two,
        executor: Executor::Rayon,
        kernel: fmm_core::Kernel::Scalar,
        precision: Precision::F64,
    };
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let reg = Arc::clone(&registry);
            std::thread::spawn(move || {
                for i in 0..iters {
                    let depth = 2 + ((t + i) as u32 % distinct);
                    let plan = reg.get_or_build(key(depth));
                    assert_eq!(plan.depth, depth);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = registry.stats();
    assert_eq!(
        s.plan_builds, distinct as u64,
        "a key must never be built twice while resident"
    );
    assert_eq!(s.plan_hits, (threads * iters) as u64 - distinct as u64);
    assert_eq!(s.entries, distinct as usize);
    assert_eq!(s.evictions, 0);
}

/// Same hammering through shared-registry `Fmm` instances — the serve
/// configuration — plus the LRU bound: capacity-2 registry under three
/// alternating keys evicts and rebuilds.
#[test]
fn shared_registry_fmm_instances_and_lru_bound() {
    let registry = Arc::new(PlanRegistry::new(PlanRegistry::DEFAULT_CAPACITY));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let reg = Arc::clone(&registry);
            std::thread::spawn(move || {
                let (p, q) = system(64, 300 + t as u64);
                for depth in [2u32, 3] {
                    let fmm =
                        Fmm::with_registry(FmmConfig::order(3).depth(depth), Arc::clone(&reg))
                            .unwrap();
                    fmm.evaluate(&p, &q).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // 4 tenants × 2 depths share 2 plans process-wide.
    assert_eq!(registry.stats().plan_builds, 2);

    let small = PlanRegistry::new(2);
    let key = |depth: u32| PlanKey {
        depth,
        k: 6,
        separation: Separation::Two,
        executor: Executor::Serial,
        kernel: fmm_core::Kernel::Scalar,
        precision: Precision::F64,
    };
    for depth in [2, 3, 4, 2, 3, 4] {
        small.get_or_build(key(depth));
    }
    let s = small.stats();
    assert_eq!(s.entries, 2, "LRU bound holds");
    assert!(s.evictions >= 1);
    // Cycling three keys through capacity two always misses: 6 builds.
    assert_eq!(s.plan_builds, 6);
}
