//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal data-parallel runtime under the `rayon` crate name. It implements
//! exactly the surface the workspace uses — `par_iter`, `par_iter_mut`,
//! `par_chunks_mut`, `into_par_iter` on `Range<usize>`, the `zip` /
//! `enumerate` / `map` adapters, the `for_each` / `sum` / `reduce` /
//! `collect` consumers, and `ThreadPoolBuilder::install` — with the same
//! semantics (deterministic length-based splitting, order-preserving
//! collect). Parallelism comes from `std::thread::scope`: each call splits
//! its producer into at most `current_num_threads()` contiguous pieces and
//! joins them. That trades rayon's work-stealing for zero dependencies; for
//! the coarse-grained loops in this workspace the difference is noise.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Thread-count plumbing (ThreadPoolBuilder / install)
// ---------------------------------------------------------------------------

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Number of threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(|c| c.get());
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    default_threads()
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        GLOBAL_THREADS.store(n, Ordering::Relaxed);
        Ok(())
    }
}

/// A "pool" is just a thread-count scope: `install` pins the count for
/// parallel calls made on the current thread while the closure runs.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        LOCAL_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.threads);
            let out = f();
            c.set(prev);
            out
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Fork-join on two closures. Runs them on two scoped threads when more than
/// one thread is configured, sequentially otherwise.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().unwrap())
        })
    }
}

// ---------------------------------------------------------------------------
// Producer: a splittable, exactly-sized source of items
// ---------------------------------------------------------------------------

/// A splittable source of items. `split_at` partitions the remaining items
/// into `[0, index)` and `[index, len)`; `into_seq` yields them in order.
pub trait Producer: Sized + Send {
    type Item: Send;
    type Seq: Iterator<Item = Self::Item>;

    fn len(&self) -> usize;
    fn split_at(self, index: usize) -> (Self, Self);
    fn into_seq(self) -> Self::Seq;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + Send> Producer for SlicePar<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (Self { slice: a }, Self { slice: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

pub struct SliceParMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceParMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (Self { slice: a }, Self { slice: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

pub struct ChunksParMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> Producer for ChunksParMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            Self {
                slice: a,
                chunk: self.chunk,
            },
            Self {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

pub struct RangePar {
    range: Range<usize>,
}

impl Producer for RangePar {
    type Item = usize;
    type Seq = Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            Self {
                range: self.range.start..mid,
            },
            Self {
                range: mid..self.range.end,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.range
    }
}

pub struct MapPar<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> Producer for MapPar<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Send + Sync + Clone,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Self {
                base: a,
                f: self.f.clone(),
            },
            Self { base: b, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }
}

pub struct ZipPar<P, Q> {
    a: P,
    b: Q,
}

impl<P: Producer, Q: Producer> Producer for ZipPar<P, Q> {
    type Item = (P::Item, Q::Item);
    type Seq = std::iter::Zip<P::Seq, Q::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a0, a1) = self.a.split_at(index);
        let (b0, b1) = self.b.split_at(index);
        (Self { a: a0, b: b0 }, Self { a: a1, b: b1 })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

pub struct EnumeratePar<P> {
    base: P,
    offset: usize,
}

pub struct EnumerateSeq<I> {
    base: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.base.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }
}

impl<P: Producer> Producer for EnumeratePar<P> {
    type Item = (usize, P::Item);
    type Seq = EnumerateSeq<P::Seq>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Self {
                base: a,
                offset: self.offset,
            },
            Self {
                base: b,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            base: self.base.into_seq(),
            next: self.offset,
        }
    }
}

// ---------------------------------------------------------------------------
// Par: the parallel-iterator wrapper
// ---------------------------------------------------------------------------

pub struct Par<P> {
    producer: P,
}

/// Split `producer` into at most `current_num_threads()` near-equal pieces
/// and run `work` over each on a scoped thread, returning per-piece results
/// in order.
fn run_pieces<P, W, R>(producer: P, work: W) -> Vec<R>
where
    P: Producer,
    W: Fn(P) -> R + Sync,
    R: Send,
{
    let len = producer.len();
    let pieces = current_num_threads().min(len.max(1));
    if pieces <= 1 {
        return vec![work(producer)];
    }
    let mut parts = Vec::with_capacity(pieces);
    let mut rest = producer;
    let mut remaining = len;
    for i in 0..pieces - 1 {
        let take = remaining / (pieces - i);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
        remaining -= take;
    }
    parts.push(rest);
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| s.spawn(move || work(part)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

impl<P: Producer> Par<P> {
    pub fn map<F, R>(self, f: F) -> Par<MapPar<P, F>>
    where
        F: Fn(P::Item) -> R + Send + Sync + Clone,
        R: Send,
    {
        Par {
            producer: MapPar {
                base: self.producer,
                f,
            },
        }
    }

    pub fn zip<Q: Producer>(self, other: Par<Q>) -> Par<ZipPar<P, Q>> {
        Par {
            producer: ZipPar {
                a: self.producer,
                b: other.producer,
            },
        }
    }

    pub fn enumerate(self) -> Par<EnumeratePar<P>> {
        Par {
            producer: EnumeratePar {
                base: self.producer,
                offset: 0,
            },
        }
    }

    pub fn len(&self) -> usize {
        self.producer.len()
    }

    pub fn is_empty(&self) -> bool {
        self.producer.is_empty()
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        run_pieces(self.producer, |piece| piece.into_seq().for_each(&f));
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        run_pieces(self.producer, |piece| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        run_pieces(self.producer, |piece| {
            piece.into_seq().fold(identity(), &op)
        })
        .into_iter()
        .fold(identity(), &op)
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        run_pieces(self.producer, |piece| piece.into_seq().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (the `rayon::prelude` surface)
// ---------------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Producer: Producer;
    fn into_par_iter(self) -> Par<Self::Producer>;
}

impl IntoParallelIterator for Range<usize> {
    type Producer = RangePar;

    fn into_par_iter(self) -> Par<RangePar> {
        Par {
            producer: RangePar { range: self },
        }
    }
}

impl<'a, T: Sync + Send> IntoParallelIterator for &'a [T] {
    type Producer = SlicePar<'a, T>;

    fn into_par_iter(self) -> Par<SlicePar<'a, T>> {
        Par {
            producer: SlicePar { slice: self },
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Producer = SliceParMut<'a, T>;

    fn into_par_iter(self) -> Par<SliceParMut<'a, T>> {
        Par {
            producer: SliceParMut { slice: self },
        }
    }
}

pub trait ParallelSlice<T: Sync + Send> {
    fn par_iter(&self) -> Par<SlicePar<'_, T>>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<SlicePar<'_, T>> {
        Par {
            producer: SlicePar { slice: self },
        }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> Par<SliceParMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk: usize) -> Par<ChunksParMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<SliceParMut<'_, T>> {
        Par {
            producer: SliceParMut { slice: self },
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> Par<ChunksParMut<'_, T>> {
        assert!(chunk > 0, "chunk size must be non-zero");
        Par {
            producer: ChunksParMut { slice: self, chunk },
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..257).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 257);
    }

    #[test]
    fn chunks_mut_enumerate() {
        let mut v = vec![0u64; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(t, chunk)| {
            for c in chunk.iter_mut() {
                *c = t as u64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 10) as u64);
        }
    }

    #[test]
    fn zip_sum_reduce() {
        let mut a = vec![1u64; 64];
        let mut b = vec![2u64; 64];
        let s: u64 = a
            .par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .map(|(i, (x, y))| *x + *y + i as u64)
            .sum();
        assert_eq!(s, 64 * 3 + (0..64u64).sum::<u64>());
        let m = (0..100usize)
            .into_par_iter()
            .map(|i| i)
            .reduce(|| 0, |x, y| x.max(y));
        assert_eq!(m, 99);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let n = pool.install(current_num_threads);
        assert_eq!(n, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<f64> = Vec::new();
        let out: Vec<f64> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0.0);
    }
}
