//! Offline drop-in subset of the `criterion` API.
//!
//! Supports the bench surface this workspace uses: `criterion_group!` /
//! `criterion_main!` (both forms), `Criterion::default().sample_size(..)`,
//! benchmark groups with `throughput`, `bench_function`,
//! `bench_with_input`, and `Bencher::iter`. Instead of criterion's
//! statistical machinery it reports the best-of-N wall-clock sample (and
//! derived throughput) on stdout — enough to eyeball regressions offline.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this harness calibrates per-sample
    /// iteration counts itself, so the target time is not used.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    /// Best observed seconds-per-iteration across samples.
    best: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: run once, then pick an iteration count targeting ~5 ms
        // per sample so short kernels aren't dominated by timer overhead.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = (0.005 / once).clamp(1.0, 1e6) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = t1.elapsed().as_secs_f64() / iters as f64;
        self.best = self.best.min(per_iter);
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.2} s ")
    }
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        best: f64::INFINITY,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let extra = match throughput {
        Some(Throughput::Elements(n)) if b.best > 0.0 => {
            format!("  {:10.1} Melem/s", n as f64 / b.best / 1e6)
        }
        Some(Throughput::Bytes(n)) if b.best > 0.0 => {
            format!("  {:10.1} MiB/s", n as f64 / b.best / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("  {id:<40} {}{extra}", format_time(b.best));
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| 2 * 2));
    }
}
