//! Offline drop-in subset of the `rand` API.
//!
//! Provides `rngs::SmallRng` (xoshiro256++, seeded via splitmix64 exactly
//! like upstream's `seed_from_u64`), the `SeedableRng` / `Rng` traits, and
//! `Rng::gen` for the types the workspace samples (`f64`, `bool`, and the
//! unsigned integers). Deterministic for a given seed, no external
//! dependencies.

/// Types that can be sampled uniformly from raw RNG output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty good for test workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn bool_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(7);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4000..6000).contains(&trues), "trues = {trues}");
    }
}
