//! Offline drop-in subset of the `proptest` API.
//!
//! Implements the surface this workspace's property tests use: the
//! `Strategy` trait with `prop_map` / `prop_flat_map`, range strategies for
//! the numeric primitives, tuple strategies up to arity 6,
//! `collection::vec`, `ProptestConfig::with_cases`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: sampling is deterministic (seeded from the
//! test's module path and case index, so failures reproduce exactly) and
//! there is no shrinking — a failing case reports its inputs via the normal
//! assert message instead.

use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Splitmix64 stream seeded from a test-name hash and case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { base: self, f }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> U, U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Strategy,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct SizeRange {
    pub start: usize,
    pub end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans (`proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: Any = Any;
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-block macro. Each generated `#[test]` runs `config.cases`
/// deterministic cases; the case index is reported on panic via a wrapping
/// message so failures can be replayed.
#[macro_export]
macro_rules! proptest {
    (@config ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&x));
            let n = crate::Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&n));
            let s = crate::Strategy::sample(&(-5i32..-1), &mut rng);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::TestRng::for_case("vecs", 3);
        let strat = collection::vec(0.0f64..1.0, 2usize..7);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, flat_map, and tuples together.
        #[test]
        fn macro_end_to_end((n, v) in (1usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec((0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b), n))
        }), scale in 0.5f64..2.0) {
            prop_assert_eq!(v.len(), n);
            for x in &v {
                prop_assert!((0.0..2.0).contains(x));
                prop_assert!(x * scale >= 0.0);
            }
        }
    }
}
