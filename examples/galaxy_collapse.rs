//! Gravitational collapse: a leapfrog N-body integration of a clustered
//! cloud, with forces from Anderson's method — the celestial-mechanics
//! workload the paper's introduction motivates.
//!
//! Initial conditions come from the shared workload generators in
//! `fmm-bench` (`Distribution::{Uniform, Plummer, TwoCluster}`), the same
//! seeded distributions the load-balance experiments use; each gets a
//! slight solid-body spin about its centre of mass.
//!
//! Each step evaluates the field −∇Φ at all particles with the FMM
//! (`evaluate_forces`) and advances a kick-drift-kick leapfrog. Energy
//! conservation is reported as the correctness check (potential from the
//! same FMM evaluation, so the check exercises both outputs).
//!
//! Run: `cargo run --release --example galaxy_collapse [n] [steps] [dist]`
//! with `dist` one of `uniform`, `plummer` (default), `two_cluster`.

use anderson_fmm::fmm_core::{Fmm, FmmConfig};
use fmm_bench::workloads::Distribution;

struct System {
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    mass: Vec<f64>,
}

/// Total mass 1, positions from the shared generator, and an ω × r
/// solid-body spin about the z-axis through the centre of mass.
fn init(dist: Distribution, n: usize, seed: u64) -> System {
    let pos = dist.positions(n, seed);
    let mut com = [0.0f64; 3];
    for p in &pos {
        for a in 0..3 {
            com[a] += p[a] / n as f64;
        }
    }
    let omega = 0.3;
    let vel = pos
        .iter()
        .map(|p| [-omega * (p[1] - com[1]), omega * (p[0] - com[0]), 0.0])
        .collect();
    System {
        pos,
        vel,
        mass: vec![1.0 / n as f64; n],
    }
}

fn energies(sys: &System, pot: &[f64], field_scale: f64) -> (f64, f64) {
    // Gravitational: Φ values from the FMM use +q/r; physical potential
    // energy is −G Σ mᵢ Φᵢ / 2 with our q = m convention.
    let kinetic: f64 = sys
        .vel
        .iter()
        .zip(&sys.mass)
        .map(|(v, m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
        .sum();
    let potential: f64 =
        -0.5 * field_scale * sys.mass.iter().zip(pot).map(|(m, p)| m * p).sum::<f64>();
    (kinetic, potential)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let dist = match args.get(3).map(String::as_str) {
        None | Some("plummer") => Distribution::Plummer,
        Some("uniform") => Distribution::Uniform,
        Some("two_cluster") => Distribution::TwoCluster,
        Some(other) => {
            eprintln!("unknown distribution {other:?}; use uniform|plummer|two_cluster");
            std::process::exit(2);
        }
    };
    let g = 1.0; // gravitational constant in code units
    let dt = 0.005;
    // Plummer softening: a cold collapse forms close pairs immediately;
    // ε smooths them below the interparticle spacing (standard in
    // collisionless N-body work). The library softens only the near
    // field, which is exactly where close encounters live.
    let softening = 0.01;

    let mut sys = init(dist, n, 11);
    let fmm = Fmm::new(FmmConfig::order(5).auto_depth(48.0).softening(softening)).expect("config");
    println!(
        "{} collapse: N = {}, dt = {}, {} steps, D = 5 (K = {})",
        dist.name(),
        n,
        dt,
        steps,
        fmm.k()
    );

    let out = fmm.evaluate_forces(&sys.pos, &sys.mass).expect("fmm");
    let mut field = out.fields.clone().unwrap();
    let (ke0, pe0) = energies(&sys, &out.potentials, g);
    let e0 = ke0 + pe0;
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10}",
        "step", "kinetic", "potential", "total E", "|ΔE/E₀|"
    );
    println!(
        "{:>5} {:>12.6} {:>12.6} {:>12.6} {:>10}",
        0, ke0, pe0, e0, "-"
    );

    for step in 1..=steps {
        // Kick-drift-kick leapfrog. The FMM's Φ = Σ m/r is the Coulomb
        // convention, under which like charges repel along −∇Φ = field;
        // gravity *attracts*, so the acceleration is −G · field.
        for ((v, p), f) in sys.vel.iter_mut().zip(&mut sys.pos).zip(&field) {
            for (a, &fa) in f.iter().enumerate() {
                v[a] -= 0.5 * dt * g * fa;
                p[a] += dt * v[a];
            }
        }
        let out = fmm.evaluate_forces(&sys.pos, &sys.mass).expect("fmm");
        field = out.fields.clone().unwrap();
        for (v, f) in sys.vel.iter_mut().zip(&field) {
            for (va, &fa) in v.iter_mut().zip(f) {
                *va -= 0.5 * dt * g * fa;
            }
        }
        let (ke, pe) = energies(&sys, &out.potentials, g);
        println!(
            "{:>5} {:>12.6} {:>12.6} {:>12.6} {:>10.2e}",
            step,
            ke,
            pe,
            ke + pe,
            ((ke + pe - e0) / e0).abs()
        );
    }
    println!("\n(with softening the leapfrog conserves energy to ~1e-5 over these steps;\n the residual drift reflects dt and the ~4-digit far-field force accuracy)");
}
