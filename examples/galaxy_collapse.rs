//! Gravitational collapse: a leapfrog N-body integration of a cold
//! spherical cloud, with forces from Anderson's method — the celestial-
//! mechanics workload the paper's introduction motivates.
//!
//! Each step evaluates the field −∇Φ at all particles with the FMM
//! (`evaluate_forces`) and advances a kick-drift-kick leapfrog. Energy
//! conservation is reported as the correctness check (potential from the
//! same FMM evaluation, so the check exercises both outputs).
//!
//! Run: `cargo run --release --example galaxy_collapse [n] [steps]`

use anderson_fmm::fmm_core::{Fmm, FmmConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct System {
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    mass: Vec<f64>,
}

/// A cold, uniform-density sphere of total mass 1 and radius 0.3 centred
/// in the unit cube, with a slight solid-body spin.
fn cold_sphere(n: usize, seed: u64) -> System {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos = Vec::with_capacity(n);
    let mut vel = Vec::with_capacity(n);
    while pos.len() < n {
        let p = [
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
        ];
        let r2 = p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
        if r2 <= 1.0 {
            let x = [0.5 + 0.3 * p[0], 0.5 + 0.3 * p[1], 0.5 + 0.3 * p[2]];
            pos.push(x);
            // ω × r spin about z.
            let omega = 0.3;
            vel.push([-omega * 0.3 * p[1], omega * 0.3 * p[0], 0.0]);
        }
    }
    System {
        pos,
        vel,
        mass: vec![1.0 / n as f64; n],
    }
}

fn energies(sys: &System, pot: &[f64], field_scale: f64) -> (f64, f64) {
    // Gravitational: Φ values from the FMM use +q/r; physical potential
    // energy is −G Σ mᵢ Φᵢ / 2 with our q = m convention.
    let kinetic: f64 = sys
        .vel
        .iter()
        .zip(&sys.mass)
        .map(|(v, m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
        .sum();
    let potential: f64 =
        -0.5 * field_scale * sys.mass.iter().zip(pot).map(|(m, p)| m * p).sum::<f64>();
    (kinetic, potential)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let g = 1.0; // gravitational constant in code units
    let dt = 0.005;
    // Plummer softening: a cold collapse forms close pairs immediately;
    // ε smooths them below the interparticle spacing (standard in
    // collisionless N-body work). The library softens only the near
    // field, which is exactly where close encounters live.
    let softening = 0.01;

    let mut sys = cold_sphere(n, 11);
    let fmm = Fmm::new(FmmConfig::order(5).auto_depth(48.0).softening(softening)).expect("config");
    println!(
        "cold-sphere collapse: N = {}, dt = {}, {} steps, D = 5 (K = {})",
        n,
        dt,
        steps,
        fmm.k()
    );

    let out = fmm.evaluate_forces(&sys.pos, &sys.mass).expect("fmm");
    let mut field = out.fields.clone().unwrap();
    let (ke0, pe0) = energies(&sys, &out.potentials, g);
    let e0 = ke0 + pe0;
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10}",
        "step", "kinetic", "potential", "total E", "|ΔE/E₀|"
    );
    println!(
        "{:>5} {:>12.6} {:>12.6} {:>12.6} {:>10}",
        0, ke0, pe0, e0, "-"
    );

    for step in 1..=steps {
        // Kick-drift-kick leapfrog. The FMM's Φ = Σ m/r is the Coulomb
        // convention, under which like charges repel along −∇Φ = field;
        // gravity *attracts*, so the acceleration is −G · field.
        for ((v, p), f) in sys.vel.iter_mut().zip(&mut sys.pos).zip(&field) {
            for (a, &fa) in f.iter().enumerate() {
                v[a] -= 0.5 * dt * g * fa;
                p[a] += dt * v[a];
            }
        }
        let out = fmm.evaluate_forces(&sys.pos, &sys.mass).expect("fmm");
        field = out.fields.clone().unwrap();
        for (v, f) in sys.vel.iter_mut().zip(&field) {
            for (va, &fa) in v.iter_mut().zip(f) {
                *va -= 0.5 * dt * g * fa;
            }
        }
        let (ke, pe) = energies(&sys, &out.potentials, g);
        println!(
            "{:>5} {:>12.6} {:>12.6} {:>12.6} {:>10.2e}",
            step,
            ke,
            pe,
            ke + pe,
            ((ke + pe - e0) / e0).abs()
        );
    }
    println!("\n(with softening the leapfrog conserves energy to ~1e-5 over these steps;\n the residual drift reflects dt and the ~4-digit far-field force accuracy)");
}
