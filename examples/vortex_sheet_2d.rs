//! 2-D example: the stream function of a point-vortex sheet via the 2-D
//! variant of Anderson's method (log kernel).
//!
//! The paper stresses that Anderson's formulation makes the 2-D and 3-D
//! codes nearly identical; this example exercises the `fmm2d` crate on a
//! classic 2-D fluid-dynamics workload — a perturbed vortex sheet, whose
//! induced stream function ψ(x) = Σ Γ_j ln(1/|x − x_j|) / 2π the method
//! evaluates in O(N).
//!
//! Run: `cargo run --release --example vortex_sheet_2d [n]`

use anderson_fmm::fmm2d::{direct_potentials, Fmm2d, Fmm2dConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    // A sinusoidally perturbed sheet of same-sign vortices across the
    // unit square, plus a background of weak mixed-sign vortices.
    let mut positions = Vec::with_capacity(n);
    let mut circulation = Vec::with_capacity(n);
    let sheet = n / 2;
    for i in 0..sheet {
        let s = (i as f64 + 0.5) / sheet as f64;
        let y = 0.5 + 0.05 * (2.0 * std::f64::consts::PI * 3.0 * s).sin();
        positions.push([s, y]);
        circulation.push(1.0 / sheet as f64);
    }
    let mut state = 99u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in sheet..n {
        positions.push([next(), next()]);
        circulation.push(if i % 2 == 0 { 0.1 } else { -0.1 } / n as f64);
    }

    let fmm = Fmm2d::new(Fmm2dConfig::with_points(16).depth(4)).expect("config");
    let t0 = std::time::Instant::now();
    let psi = fmm.evaluate(&positions, &circulation);
    let t_fmm = t0.elapsed().as_secs_f64();
    println!(
        "vortex sheet: N = {}, K = {}, FMM time {:.3} s",
        n,
        fmm.k(),
        t_fmm
    );

    // Verify on a subsample against direct summation.
    let n_ref = 2000.min(n);
    let t0 = std::time::Instant::now();
    let reference = direct_potentials(&positions[..n_ref], &circulation[..n_ref]);
    let t_dir_sub = t0.elapsed().as_secs_f64();
    let fmm_sub = fmm.evaluate(&positions[..n_ref], &circulation[..n_ref]);
    let num: f64 = fmm_sub
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f64 = reference.iter().map(|b| b * b).sum();
    println!(
        "accuracy on {}-particle subsystem: rms_rel = {:.3e}",
        n_ref,
        (num / den).sqrt()
    );
    println!(
        "direct O(N²) on the subsystem took {:.3} s → extrapolated full direct ≈ {:.1} s",
        t_dir_sub,
        t_dir_sub * (n as f64 / n_ref as f64).powi(2)
    );

    // Print the stream function along the sheet (its variation drives the
    // roll-up in a real vortex-method simulation).
    let probes = 8;
    print!("ψ along the sheet: ");
    for p in 0..probes {
        let i = p * sheet / probes;
        print!("{:.4} ", psi[i]);
    }
    println!();
}
