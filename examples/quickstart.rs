//! Quickstart: evaluate the potential of a uniform particle system with
//! Anderson's O(N) hierarchical method and compare against direct
//! summation.
//!
//! Run: `cargo run --release --example quickstart`
//!
//! Pass `-- --executor spmd --workers 8` to run the same computation
//! through the message-passing SPMD executor (worker threads as the VUs
//! of a CM-5-style grid; identical bits, measured data motion). Add
//! `--fabric unix` or `--fabric tcp` to carry the same schedule over
//! length-prefixed socket frames instead of in-process channels — the
//! output stays bitwise identical (see `fmm-worker` for true
//! multi-process execution).

use anderson_fmm::fmm_core::{relative_error_stats, Executor, Fabric, Fmm, FmmConfig};
use anderson_fmm::{fmm_direct, fmm_spmd};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn executor_from_args() -> Executor {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    match value_of("--executor").map(String::as_str) {
        Some("spmd") => {
            let workers = value_of("--workers")
                .and_then(|w| w.parse().ok())
                .unwrap_or(8);
            let fabric = value_of("--fabric")
                .and_then(|f| Fabric::from_name(f))
                .unwrap_or_default();
            fmm_spmd::install();
            match Executor::spmd(workers) {
                Executor::Spmd(opts) => Executor::Spmd(opts.transport(fabric)),
                other => other,
            }
        }
        Some("serial") => Executor::Serial,
        _ => Executor::Rayon,
    }
}

fn main() {
    // 1. A particle system: positions anywhere, charges (or masses) per
    //    particle. Here: 20,000 uniform points in the unit cube.
    let n = 20_000;
    let mut rng = SmallRng::seed_from_u64(7);
    let positions: Vec<[f64; 3]> = (0..n).map(|_| [rng.gen(), rng.gen(), rng.gen()]).collect();
    let charges = vec![1.0f64; n];

    // 2. Configure the method: integration order D = 5 is the paper's
    //    "four digits" configuration (K = 12 icosahedral rule); the depth,
    //    truncation and sphere radii default to calibrated values.
    let executor = executor_from_args();
    let fmm = Fmm::new(FmmConfig::order(5).executor(executor)).expect("valid configuration");

    // 3. Evaluate potentials at every particle in O(N).
    let out = fmm.evaluate(&positions, &charges).expect("evaluation");
    println!(
        "evaluated {} particles at hierarchy depth {}",
        out.potentials.len(),
        out.depth
    );
    if let Some(rep) = &out.spmd {
        let bytes: u64 = rep.phases.iter().map(|p| p.bytes).sum();
        let msgs: u64 = rep.phases.iter().map(|p| p.messages).sum();
        println!(
            "spmd: {} workers on a {:?} VU grid moved {:.2} MB in {} messages",
            rep.workers,
            rep.vu_dims,
            bytes as f64 / 1e6,
            msgs
        );
    }
    println!("{}", out.profile.table());

    // 4. Check against the O(N²) direct sum.
    let reference = fmm_direct::potentials(&positions, &charges);
    let stats = relative_error_stats(&out.potentials, &reference);
    println!(
        "accuracy vs direct: rms_rel = {:.3e} ({:.2} digits), max_rel = {:.3e}",
        stats.rms_rel,
        stats.digits(),
        stats.max_rel
    );
    assert!(stats.rms_rel < 1e-3, "expected ~4 digits");
}
