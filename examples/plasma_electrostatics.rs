//! Electrostatics of a two-species plasma slab: mixed-sign charges, the
//! plasma-physics workload of the paper's introduction.
//!
//! Demonstrates: explicit domains (`evaluate_in` with a fixed bounding
//! box, so repeated evaluations bin identically), mixed-sign accuracy
//! behaviour, higher-order configuration (D = 14) when more digits are
//! needed, and Debye-like screening visible in the potential statistics.
//!
//! Run: `cargo run --release --example plasma_electrostatics [n]`

use anderson_fmm::fmm_core::{relative_error_stats, Fmm, FmmConfig};
use anderson_fmm::fmm_direct;
use anderson_fmm::fmm_tree::Domain;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    assert!(
        n.is_multiple_of(2),
        "need an even particle count (two species)"
    );
    let mut rng = SmallRng::seed_from_u64(2026);

    // Electrons uniform in the slab; ions slightly clumped — a crude
    // two-species configuration with net charge zero.
    let mut positions = Vec::with_capacity(n);
    let mut charges = Vec::with_capacity(n);
    for _ in 0..n / 2 {
        positions.push([rng.gen(), rng.gen(), rng.gen::<f64>() * 0.5 + 0.25]);
        charges.push(-1.0);
    }
    for _ in 0..n / 2 {
        let cx: f64 = rng.gen();
        positions.push([
            (cx + 0.05 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
            rng.gen(),
            rng.gen::<f64>() * 0.5 + 0.25,
        ]);
        charges.push(1.0);
    }

    let domain = Domain::unit();
    let reference = fmm_direct::potentials(&positions, &charges);
    let scale = (reference.iter().map(|p| p * p).sum::<f64>() / n as f64).sqrt();
    println!(
        "two-species slab: N = {}, net charge = {:+.1}, rms potential = {:.3}",
        n,
        charges.iter().sum::<f64>(),
        scale
    );

    println!(
        "\n{:>3} {:>5} {:>12} {:>7} {:>10}",
        "D", "K", "rms_rel", "digits", "time (ms)"
    );
    for d in [5usize, 9, 14] {
        let fmm = Fmm::new(FmmConfig::order(d)).expect("config");
        let t0 = std::time::Instant::now();
        let out = fmm.evaluate_in(&positions, &charges, domain).expect("fmm");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let stats = relative_error_stats(&out.potentials, &reference);
        println!(
            "{:>3} {:>5} {:>12.3e} {:>7.2} {:>10.1}",
            d,
            fmm.k(),
            stats.rms_rel,
            stats.digits(),
            dt
        );
    }

    // Field energy check: Σ qᵢ Φᵢ ≥ ... for a screened neutral system the
    // interaction energy is negative (opposite charges attract).
    let fmm = Fmm::new(FmmConfig::order(9)).expect("config");
    let out = fmm.evaluate_in(&positions, &charges, domain).expect("fmm");
    let energy: f64 = 0.5
        * charges
            .iter()
            .zip(&out.potentials)
            .map(|(q, p)| q * p)
            .sum::<f64>();
    println!(
        "\ninteraction energy ½Σqφ = {:.4} (negative: screening/binding), \
         per pair {:.3e}",
        energy,
        energy / (n as f64 * (n as f64 - 1.0) / 2.0)
    );
}
