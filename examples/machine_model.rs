//! Driving the data-parallel machine simulator directly: lay a box grid
//! over a VU grid, fetch interactive-field halos with each of the paper's
//! strategies, and inspect data-motion counters — the substrate behind
//! the Table-4 experiment, usable for what-if layout studies.
//!
//! Run: `cargo run --release --example machine_model [subgrid]`

use anderson_fmm::fmm_machine::ghost::{fetch, ghost_volume, FetchStrategy};
use anderson_fmm::fmm_machine::{BlockLayout, CostModel, DistGrid, VuGrid};
use anderson_fmm::fmm_tree::{interactive_field_union, Separation};

fn main() {
    let s: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    assert!(
        s.is_power_of_two() && s >= 8,
        "subgrid must be a power of two ≥ 8"
    );

    // An 8-VU machine with s³ subgrids — small enough to run the real
    // data-moving simulation quickly at any s.
    let vu = VuGrid::new([2, 2, 2]);
    let layout = BlockLayout::new([2 * s, 2 * s, 2 * s], vu);
    println!(
        "machine: {} VUs, {}³ boxes each ({} total); ghost volume/VU: {}",
        layout.vu.len(),
        s,
        layout.total_boxes(),
        ghost_volume(&layout)
    );

    let grid = DistGrid::from_fn(layout, 12, |g, c| {
        (g[0] * 10_000 + g[1] * 100 + g[2]) as f64 + c as f64
    });
    let offsets = interactive_field_union(Separation::Two);
    let cost = CostModel::cm5e();

    println!(
        "\n{:<38} {:>12} {:>12} {:>9} {:>12}",
        "strategy", "off-VU boxes", "local moves", "#CSHIFTs", "model time"
    );
    for strat in FetchStrategy::ALL {
        let r = fetch(&grid, strat, &offsets);
        println!(
            "{:<38} {:>12} {:>12} {:>9} {:>10.2}ms",
            strat.name(),
            r.counters.off_vu_boxes,
            r.counters.local_box_moves,
            r.counters.cshifts,
            cost.time_s(&r.counters, grid.k) * 1e3
        );
    }
    println!(
        "\nTry different subgrid sizes: the aliased strategies' advantage\n\
         grows with the surface-to-volume ratio (paper §3.3.1 notes that\n\
         subgrids thinner than the ghost depth need communication beyond\n\
         nearest-neighbour VUs)."
    );
}
